// Leveled logging for the pipeline and benchmark harnesses.
#pragma once

#include <sstream>
#include <string>

namespace acclaim::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& s);

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

/// Stream-style logger: LOG_AT(Info) << "trained " << n << " points";
/// The temporary flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, ss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

inline LogLine log_debug() { return LogLine(LogLevel::Debug); }
inline LogLine log_info() { return LogLine(LogLevel::Info); }
inline LogLine log_warn() { return LogLine(LogLevel::Warn); }
inline LogLine log_error() { return LogLine(LogLevel::ErrorLevel); }

}  // namespace acclaim::util

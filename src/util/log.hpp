// Leveled logging for the pipeline and benchmark harnesses.
//
// Emitted lines carry an ISO-8601 UTC timestamp and a level tag:
//   2026-08-06T12:34:56.789Z [INFO] trained 120 points
// By default lines go to stderr; tests (or embedders) can install a sink
// with set_log_sink() to capture the raw message + level instead of
// scraping stderr.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace acclaim::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Canonical lowercase name ("debug", ..., "error", "off").
const char* log_level_name(LogLevel level);

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when a message at `level` would currently be emitted (the check the
/// AC_LOG_* macros use to skip message formatting entirely).
bool log_enabled(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive). Throws
/// InvalidArgument on anything else.
LogLevel parse_log_level(const std::string& s);

/// Lenient overload: returns `fallback` instead of throwing on unknown
/// strings (for config paths that want best-effort parsing; the fallback
/// must be explicit so silent defaulting never hides a typo).
LogLevel parse_log_level(const std::string& s, LogLevel fallback) noexcept;

/// Receives every emitted message (post level filtering) with its level and
/// the *raw* message text (no timestamp/tag decoration).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink; pass nullptr to restore the default stderr
/// sink. Returns the previous sink (nullptr if the default was active).
LogSink set_log_sink(LogSink sink);

/// "<ISO-8601 UTC> [LEVEL] <msg>" — the decoration the default stderr sink
/// applies; exposed so tests can verify the format.
std::string format_log_line(LogLevel level, const std::string& msg);

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

/// Stream-style logger: LOG_AT(Info) << "trained " << n << " points";
/// The temporary flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, ss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

inline LogLine log_debug() { return LogLine(LogLevel::Debug); }
inline LogLine log_info() { return LogLine(LogLevel::Info); }
inline LogLine log_warn() { return LogLine(LogLevel::Warn); }
inline LogLine log_error() { return LogLine(LogLevel::ErrorLevel); }

}  // namespace acclaim::util

/// Level-checked convenience macros: the stream arguments are not even
/// evaluated when the level is filtered out, unlike the log_*() functions
/// (which always build the stringstream). Also papers over the
/// LogLevel::ErrorLevel spelling: AC_LOG_ERROR(), not log_errorlevel().
///
///   AC_LOG_INFO() << "trained " << n << " points";
#define AC_LOG_AT(lvl)                     \
  if (!::acclaim::util::log_enabled(lvl)) { \
  } else                                    \
    ::acclaim::util::LogLine(lvl)

#define AC_LOG_DEBUG() AC_LOG_AT(::acclaim::util::LogLevel::Debug)
#define AC_LOG_INFO() AC_LOG_AT(::acclaim::util::LogLevel::Info)
#define AC_LOG_WARN() AC_LOG_AT(::acclaim::util::LogLevel::Warn)
#define AC_LOG_ERROR() AC_LOG_AT(::acclaim::util::LogLevel::ErrorLevel)

// Minimal JSON document model, parser, and serializer.
//
// MPICH communicates collective algorithm selections through a JSON
// configuration file (CVAR MPIR_CVAR_COLL_SELECTION_TUNING_JSON_FILE). The
// RuleGenerator emits such files and the SelectionEngine reads them back, so
// the reproduction carries its own self-contained JSON implementation.
//
// Supported: null, bool, finite numbers, strings (with \uXXXX escapes for the
// BMP), arrays, objects (insertion-ordered, which keeps emitted rule files
// stable and diffable).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace acclaim::util {

class Json;

using JsonArray = std::vector<Json>;

/// Insertion-ordered string->Json map (rule files must keep rule order).
class JsonObject {
 public:
  bool contains(const std::string& key) const;
  /// Inserts a default-constructed value if missing.
  Json& operator[](const std::string& key);
  /// Throws NotFoundError if missing.
  const Json& at(const std::string& key) const;
  Json& at(const std::string& key);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

/// A JSON value.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(long i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long long i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw InvalidArgument on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object access sugar; throws on non-objects / missing keys (const).
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array append sugar; throws on non-arrays.
  void push_back(Json v);

  /// Serialize. indent == 0 -> compact one-line form.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  /// Throws ParseError with line/column on malformed input.
  static Json parse(const std::string& text);

  /// Read/parse a file; throws IoError / ParseError.
  static Json parse_file(const std::string& path);

  /// Write the serialized form to a file; throws IoError.
  void dump_file(const std::string& path, int indent = 2) const;

  bool operator==(const Json& other) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace acclaim::util

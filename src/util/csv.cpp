#include "util/csv.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace acclaim::util {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw IoError("cannot open CSV file for writing: '" + path + "'");
  }
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  require(!wrote_header_, "CsvWriter::header called twice");
  columns_ = columns.size();
  wrote_header_ = true;
  write_fields(columns);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (wrote_header_) {
    require(fields.size() == columns_, "CSV row width does not match header");
  }
  write_fields(fields);
}

void CsvWriter::row_numeric(const std::vector<double>& fields) {
  std::vector<std::string> s;
  s.reserve(fields.size());
  for (double v : fields) {
    s.push_back(format_double(v));
  }
  row(s);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) {
      out_ << ',';
    }
    out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
  if (!out_) {
    throw IoError("write failure on CSV file '" + path_ + "'");
  }
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) {
      return i;
    }
  }
  throw NotFoundError("CSV has no column '" + name + "'");
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open CSV file for reading: '" + path + "'");
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  // Character-level RFC 4180 scan so quoted fields may contain commas and
  // newlines.
  CsvTable table;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  bool first_row = true;
  auto end_field = [&] {
    fields.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    if (first_row) {
      table.columns = std::move(fields);
      first_row = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
    fields.clear();
    row_has_content = false;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"': in_quotes = true; row_has_content = true; break;
      case ',': end_field(); row_has_content = true; break;
      case '\r': break;  // swallow CR of CRLF
      case '\n': end_row(); break;
      default: field += c; row_has_content = true; break;
    }
  }
  if (row_has_content || !field.empty() || !fields.empty()) {
    end_row();  // file without trailing newline
  }
  return table;
}

}  // namespace acclaim::util

#include "serve/daemon.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace acclaim::serve {

namespace {

util::Json decision_fields(const Decision& d) {
  util::Json fields = util::Json::object();
  fields["algorithm"] = coll::algorithm_info(d.algorithm).name;
  fields["cached"] = d.cache_hit;
  fields["version"] = d.version;
  return fields;
}

}  // namespace

std::string Daemon::handle_line(const std::string& line) {
  static telemetry::Counter& requests = telemetry::metrics().counter("serve.requests");
  static telemetry::Counter& parse_errors = telemetry::metrics().counter("serve.parse_errors");
  requests.add();
  try {
    const Request req = parse_request(line);
    switch (req.op) {
      case Op::Ping:
        return ok_response("ping", util::Json::object());
      case Op::Shutdown: {
        shutdown_ = true;
        return ok_response("shutdown", util::Json::object());
      }
      case Op::Stats: {
        const DecisionCache::Stats st = core_.cache_stats();
        util::Json fields = util::Json::object();
        fields["models"] = core_.store().size();
        fields["cache_hits"] = st.hits;
        fields["cache_misses"] = st.misses;
        fields["cache_evictions"] = st.evictions;
        fields["cache_entries"] = st.entries;
        fields["cache_capacity"] = st.capacity;
        return ok_response("stats", std::move(fields));
      }
      case Op::Query: {
        const Decision d = core_.select(req.queries.front(), req.topology);
        return ok_response("query", decision_fields(d));
      }
      case Op::Batch: {
        const std::vector<Decision> ds = core_.select_batch(req.queries, req.topology);
        util::Json results = util::Json::array();
        for (const Decision& d : ds) {
          results.push_back(decision_fields(d));
        }
        util::Json fields = util::Json::object();
        fields["results"] = std::move(results);
        return ok_response("batch", std::move(fields));
      }
      case Op::Publish: {
        const core::CollectiveModel model =
            core::CollectiveModel::from_json(util::Json::parse_file(req.path));
        const ModelKey key{model.collective(), checked_comm_size(req.nodes, req.ppn),
                           req.topology};
        const std::uint64_t version = core_.publish(key, model);
        util::Json fields = util::Json::object();
        fields["key"] = key.to_string();
        fields["version"] = version;
        return ok_response("publish", std::move(fields));
      }
    }
    return error_response("unhandled op");
  } catch (const Error& e) {
    parse_errors.add();
    return error_response(e.what());
  } catch (const std::exception& e) {
    parse_errors.add();
    return error_response(std::string("internal error: ") + e.what());
  }
}

std::uint64_t Daemon::serve_stream(std::istream& in, std::ostream& out) {
  std::uint64_t handled = 0;
  std::string line;
  while (!shutdown_ && std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    out << handle_line(line) << "\n" << std::flush;
    ++handled;
  }
  return handled;
}

namespace {

/// RAII fd so early returns / exceptions cannot leak sockets.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const noexcept { return fd_; }

 private:
  int fd_;
};

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "unix socket path too long (limit is ~107 chars)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Clears the way for bind() at `path`. A missing file is fine; a socket
/// file that nothing accepts on (a dead daemon's leftover) is unlinked.
/// Anything else is an error rather than collateral damage: a regular file
/// there is almost certainly a typo'd path, and a socket a peer accepts on
/// is a live daemon.
void claim_socket_path(const std::string& path, const sockaddr_un& addr) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) {
      return;
    }
    throw IoError("cannot stat socket path " + path + ": " + std::strerror(errno));
  }
  if (!S_ISSOCK(st.st_mode)) {
    throw IoError("refusing to replace " + path + ": exists and is not a socket");
  }
  Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (probe.get() >= 0 &&
      ::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
    throw IoError("another daemon is already listening on " + path);
  }
  ::unlink(path.c_str());
}

/// Sends all of `data` (blocking).
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      throw IoError(std::string("socket send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint64_t Daemon::serve_unix_socket(const std::string& path) {
  Fd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (listener.get() < 0) {
    throw IoError(std::string("cannot create unix socket: ") + std::strerror(errno));
  }
  const sockaddr_un addr = socket_address(path);
  claim_socket_path(path, addr);
  if (::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw IoError("cannot bind unix socket " + path + ": " + std::strerror(errno));
  }
  if (::listen(listener.get(), 16) != 0) {
    throw IoError("cannot listen on unix socket " + path + ": " + std::strerror(errno));
  }
  AC_LOG_INFO() << "acclaimd listening on " << path;

  std::uint64_t handled = 0;
  while (!shutdown_) {
    Fd conn(::accept(listener.get(), nullptr, nullptr));
    if (conn.get() < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::unlink(path.c_str());
      throw IoError(std::string("accept failed: ") + std::strerror(errno));
    }
    // Serve this connection until the peer closes (or shutdown). Lines may
    // arrive split across reads; buffer until '\n'.
    std::string buffer;
    char chunk[4096];
    while (!shutdown_) {
      const ssize_t n = ::recv(conn.get(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      for (std::size_t nl = buffer.find('\n', pos); nl != std::string::npos;
           nl = buffer.find('\n', pos)) {
        const std::string line = buffer.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty()) {
          continue;
        }
        send_all(conn.get(), handle_line(line) + "\n");
        ++handled;
      }
      buffer.erase(0, pos);
    }
  }
  ::unlink(path.c_str());
  return handled;
}

std::string unix_socket_request(const std::string& path, const std::string& line) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    throw IoError(std::string("cannot create unix socket: ") + std::strerror(errno));
  }
  const sockaddr_un addr = socket_address(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw IoError("cannot connect to " + path + ": " + std::strerror(errno));
  }
  send_all(fd.get(), line + "\n");
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      throw IoError("daemon closed the connection before responding");
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response.substr(0, response.find('\n'));
}

}  // namespace acclaim::serve

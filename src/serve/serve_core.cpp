#include "serve/serve_core.hpp"

#include <chrono>
#include <map>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace acclaim::serve {

ServeCore::ServeCore(ServeConfig cfg)
    : cfg_(cfg),
      store_(cfg.store_shards),
      cache_(cfg.cache_capacity, cfg.cache_shards) {}

std::uint64_t ServeCore::publish(const ModelKey& key, core::CollectiveModel model) {
  static telemetry::Counter& published = telemetry::metrics().counter("serve.models_published");
  const std::uint64_t version = store_.publish(key, std::move(model));
  published.add();
  return version;
}

std::shared_ptr<const ModelSnapshot> ServeCore::resolve_or_throw(
    const bench::Scenario& s, const std::string& topology) const {
  auto snap = store_.resolve(ModelKey{s.collective, s.nranks(), topology});
  if (!snap) {
    throw NotFoundError("no model published for " +
                        ModelKey{s.collective, s.nranks(), topology}.to_string());
  }
  return snap;
}

Decision ServeCore::select(const bench::Scenario& s, const std::string& topology) {
  static telemetry::Histogram& query_us =
      telemetry::metrics().histogram("serve.query_us", {1e-3, 48});
  static telemetry::Counter& queries = telemetry::metrics().counter("serve.queries");
  const auto start = std::chrono::steady_clock::now();
  const auto snap = resolve_or_throw(s, topology);
  Decision d;
  d.version = snap->version;
  const DecisionKey key = quantize(snap->version, s);
  if (const auto cached = cache_.get(key)) {
    d.algorithm = *cached;
    d.cache_hit = true;
  } else {
    d.algorithm = snap->model.select(s);
    cache_.put(key, d.algorithm);
  }
  queries.add();
  query_us.observe(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count());
  return d;
}

std::vector<Decision> ServeCore::select_batch(const std::vector<bench::Scenario>& scenarios,
                                              const std::string& topology) {
  static telemetry::Histogram& batch_size =
      telemetry::metrics().histogram("serve.batch_size", {1.0, 24});
  static telemetry::Histogram& batch_us =
      telemetry::metrics().histogram("serve.batch_us", {1e-2, 48});
  static telemetry::Counter& queries = telemetry::metrics().counter("serve.queries");
  if (scenarios.empty()) {
    return {};
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<Decision> out(scenarios.size());

  // Pass 1: resolve snapshots and probe the cache. Misses are grouped per
  // snapshot so each group can run through that model's batched kernel.
  // (A batch usually spans one or two collectives; the group count is tiny.)
  struct MissGroup {
    std::shared_ptr<const ModelSnapshot> snap;
    std::vector<std::size_t> indices;
    std::vector<bench::Scenario> scenarios;
  };
  std::map<std::uint64_t, MissGroup> misses;  // keyed by snapshot version
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto snap = resolve_or_throw(scenarios[i], topology);
    out[i].version = snap->version;
    if (const auto cached = cache_.get(quantize(snap->version, scenarios[i]))) {
      out[i].algorithm = *cached;
      out[i].cache_hit = true;
    } else {
      MissGroup& group = misses[snap->version];
      if (!group.snap) {
        group.snap = snap;
      }
      group.indices.push_back(i);
      group.scenarios.push_back(scenarios[i]);
    }
  }

  // Pass 2: evaluate the misses. select_batch == per-scenario select() bit
  // for bit (core/model.hpp), so routing by size is purely a throughput
  // decision.
  for (auto& [version, group] : misses) {
    if (group.scenarios.size() >= cfg_.batch_threshold) {
      const std::vector<coll::Algorithm> algs = group.snap->model.select_batch(group.scenarios);
      for (std::size_t j = 0; j < group.indices.size(); ++j) {
        out[group.indices[j]].algorithm = algs[j];
      }
    } else {
      for (std::size_t j = 0; j < group.indices.size(); ++j) {
        out[group.indices[j]].algorithm = group.snap->model.select(group.scenarios[j]);
      }
    }
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      cache_.put(quantize(version, group.scenarios[j]), out[group.indices[j]].algorithm);
    }
  }

  queries.add(scenarios.size());
  batch_size.observe(static_cast<double>(scenarios.size()));
  batch_us.observe(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count());
  return out;
}

}  // namespace acclaim::serve

// acclaimd serving core: model store + decision cache + batched prediction.
//
// This is the library behind `acclaim serve` (the NDJSON daemon) and the
// loadgen bench: a long-lived object that answers algorithm-selection
// queries for many concurrent jobs. The read path is:
//
//   query --> quantize(features) --> DecisionCache probe --(hit)--> answer
//                 |
//                (miss)
//                 v
//          ModelSnapshot (atomic load, never locks out publishers)
//                 v
//          CollectiveModel::select / select_batch (flat-forest kernels,
//          batches fan out on the global thread pool)
//                 v
//          DecisionCache::put --> answer
//
// Both paths return the same bits as calling CollectiveModel::select
// directly on the published model: the cache key is a lossless quantization
// (see decision_cache.hpp) that includes the snapshot version, and
// select_batch is documented (and tested) to equal per-scenario select().
// The loadgen bench and tests/test_serve.cpp enforce this differentially.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/decision_cache.hpp"
#include "serve/model_store.hpp"

namespace acclaim::serve {

struct ServeConfig {
  int store_shards = 8;
  int cache_shards = 8;
  std::size_t cache_capacity = 1 << 16;
  /// Batches at or above this size route through CollectiveModel::
  /// select_batch (parallel fused kernel); smaller remainders run the
  /// scalar path. Both produce identical bits, so this is purely a
  /// throughput knob.
  std::size_t batch_threshold = 4;
};

/// One answered query.
struct Decision {
  coll::Algorithm algorithm = coll::Algorithm::BcastBinomial;
  std::uint64_t version = 0;  ///< snapshot that decided
  bool cache_hit = false;
};

class ServeCore {
 public:
  explicit ServeCore(ServeConfig cfg = {});

  /// Publishes a trained model; see ModelStore::publish.
  std::uint64_t publish(const ModelKey& key, core::CollectiveModel model);

  /// Answers one query. The model key is derived from the scenario
  /// (collective, nnodes x ppn) and `topology`, with the wildcard-scale
  /// fallback of ModelStore::resolve. Throws NotFoundError when no model
  /// covers the query.
  Decision select(const bench::Scenario& s, const std::string& topology = "default");

  /// Answers a batch of queries against one topology. Cache hits resolve
  /// immediately; the misses of each snapshot run through the model's
  /// batched selection kernel (which fans out on the global thread pool).
  /// Element i is exactly what select(scenarios[i], topology) would return
  /// (modulo the cache_hit flag).
  std::vector<Decision> select_batch(const std::vector<bench::Scenario>& scenarios,
                                     const std::string& topology = "default");

  const ModelStore& store() const noexcept { return store_; }
  DecisionCache::Stats cache_stats() const { return cache_.stats(); }
  std::size_t cache_capacity() const noexcept { return cache_.capacity(); }

 private:
  std::shared_ptr<const ModelSnapshot> resolve_or_throw(const bench::Scenario& s,
                                                        const std::string& topology) const;

  ServeConfig cfg_;
  ModelStore store_;
  DecisionCache cache_;
};

}  // namespace acclaim::serve

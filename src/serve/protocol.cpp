#include "serve/protocol.hpp"

#include <cmath>

#include "util/error.hpp"

namespace acclaim::serve {

namespace {

/// Integer field with range validation; `lo`/`hi` inclusive.
std::int64_t int_field(const util::Json& obj, const std::string& key, std::int64_t lo,
                       std::int64_t hi) {
  require(obj.contains(key), ("request is missing '" + key + "'").c_str());
  const util::Json& v = obj.at(key);
  require(v.is_number(), ("request field '" + key + "' must be a number").c_str());
  // Range-check in the double domain before casting: converting a double
  // outside int64's range (e.g. 1e300, or NaN) to int64 is itself UB, so the
  // cast may only happen once the value is known to fit. lo/hi used here are
  // small ints or powers of two, hence exact as doubles.
  const double d = v.as_number();
  if (!(d >= static_cast<double>(lo) && d <= static_cast<double>(hi)) || d != std::trunc(d)) {
    throw InvalidArgument("request field '" + key + "' out of range [" + std::to_string(lo) +
                          ", " + std::to_string(hi) + "]: " + v.dump());
  }
  const auto n = static_cast<std::int64_t>(d);
  if (n < lo || n > hi) {
    throw InvalidArgument("request field '" + key + "' out of range [" + std::to_string(lo) +
                          ", " + std::to_string(hi) + "]: " + v.dump());
  }
  return n;
}

bench::Scenario scenario_from(const util::Json& obj) {
  bench::Scenario s;
  require(obj.contains("collective"), "query is missing 'collective'");
  require(obj.at("collective").is_string(), "query field 'collective' must be a string");
  s.collective = coll::parse_collective(obj.at("collective").as_string());
  s.nnodes = static_cast<int>(int_field(obj, "nodes", 1, kMaxNodes));
  s.ppn = static_cast<int>(int_field(obj, "ppn", 1, kMaxPpn));
  checked_comm_size(s.nnodes, s.ppn);  // joint cap: nranks() must stay int-safe
  // msg is bytes; ~2^62 caps it far below uint64 wrap while allowing any
  // plausible message size.
  s.msg_bytes = static_cast<std::uint64_t>(
      int_field(obj, "msg", 1, std::int64_t{1} << 62));
  return s;
}

std::string topology_from(const util::Json& obj) {
  if (!obj.contains("topology")) {
    return "default";
  }
  require(obj.at("topology").is_string(), "request field 'topology' must be a string");
  const std::string& t = obj.at("topology").as_string();
  require(!t.empty() && t.size() <= 256, "request field 'topology' must be 1..256 chars");
  return t;
}

}  // namespace

int checked_comm_size(std::int64_t nodes, std::int64_t ppn) {
  // Both operands are bounded well below 2^32 everywhere this is called, so
  // the 64-bit product itself cannot wrap; only the int-range check remains.
  const std::int64_t ranks = nodes * ppn;
  if (nodes < 0 || ppn < 0 || ranks > kMaxRanks) {
    throw InvalidArgument("nodes x ppn = " + std::to_string(nodes) + " x " +
                          std::to_string(ppn) + " exceeds the rank cap " +
                          std::to_string(kMaxRanks));
  }
  return static_cast<int>(ranks);
}

const char* op_name(Op op) {
  switch (op) {
    case Op::Ping: return "ping";
    case Op::Query: return "query";
    case Op::Batch: return "batch";
    case Op::Publish: return "publish";
    case Op::Stats: return "stats";
    case Op::Shutdown: return "shutdown";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  const util::Json doc = util::Json::parse(line);
  require(doc.is_object(), "request must be a JSON object");
  require(doc.contains("op"), "request is missing 'op'");
  require(doc.at("op").is_string(), "request field 'op' must be a string");
  const std::string& op = doc.at("op").as_string();

  Request req;
  if (op == "ping") {
    req.op = Op::Ping;
  } else if (op == "stats") {
    req.op = Op::Stats;
  } else if (op == "shutdown") {
    req.op = Op::Shutdown;
  } else if (op == "query") {
    req.op = Op::Query;
    req.queries.push_back(scenario_from(doc));
    req.topology = topology_from(doc);
  } else if (op == "batch") {
    req.op = Op::Batch;
    require(doc.contains("queries"), "batch request is missing 'queries'");
    require(doc.at("queries").is_array(), "batch field 'queries' must be an array");
    const util::JsonArray& arr = doc.at("queries").as_array();
    require(!arr.empty(), "batch field 'queries' must not be empty");
    require(arr.size() <= kMaxBatch, "batch field 'queries' exceeds the batch cap");
    req.queries.reserve(arr.size());
    for (const util::Json& q : arr) {
      require(q.is_object(), "batch queries must be JSON objects");
      req.queries.push_back(scenario_from(q));
    }
    req.topology = topology_from(doc);
  } else if (op == "publish") {
    req.op = Op::Publish;
    require(doc.contains("path"), "publish request is missing 'path'");
    require(doc.at("path").is_string(), "publish field 'path' must be a string");
    req.path = doc.at("path").as_string();
    require(!req.path.empty(), "publish field 'path' must not be empty");
    // nodes/ppn come as a pair or not at all: one without the other would
    // silently make comm_size 0 and register the model under the wildcard
    // scale instead of the intended one.
    require(doc.contains("nodes") == doc.contains("ppn"),
            "publish requires 'nodes' and 'ppn' together (or neither, for the wildcard scale)");
    if (doc.contains("nodes")) {
      req.nodes = static_cast<int>(int_field(doc, "nodes", 1, kMaxNodes));
      req.ppn = static_cast<int>(int_field(doc, "ppn", 1, kMaxPpn));
      checked_comm_size(req.nodes, req.ppn);
    }
    req.topology = topology_from(doc);
  } else {
    throw InvalidArgument("unknown op '" + op + "'");
  }
  return req;
}

util::Json request_to_json(const Request& req) {
  util::Json doc = util::Json::object();
  doc["op"] = op_name(req.op);
  if (req.op == Op::Query) {
    const bench::Scenario& s = req.queries.front();
    doc["collective"] = coll::collective_name(s.collective);
    doc["nodes"] = s.nnodes;
    doc["ppn"] = s.ppn;
    doc["msg"] = s.msg_bytes;
    doc["topology"] = req.topology;
  } else if (req.op == Op::Batch) {
    util::Json arr = util::Json::array();
    for (const bench::Scenario& s : req.queries) {
      util::Json q = util::Json::object();
      q["collective"] = coll::collective_name(s.collective);
      q["nodes"] = s.nnodes;
      q["ppn"] = s.ppn;
      q["msg"] = s.msg_bytes;
      arr.push_back(std::move(q));
    }
    doc["queries"] = std::move(arr);
    doc["topology"] = req.topology;
  } else if (req.op == Op::Publish) {
    doc["path"] = req.path;
    if (req.nodes > 0) {
      doc["nodes"] = req.nodes;
    }
    if (req.ppn > 0) {
      doc["ppn"] = req.ppn;
    }
    doc["topology"] = req.topology;
  }
  return doc;
}

std::string error_response(const std::string& msg) {
  util::Json doc = util::Json::object();
  doc["ok"] = false;
  doc["error"] = msg;
  return doc.dump();
}

std::string ok_response(const std::string& op, util::Json fields) {
  util::Json doc = util::Json::object();
  doc["ok"] = true;
  doc["op"] = op;
  for (auto& [key, value] : fields.as_object()) {
    doc[key] = value;
  }
  return doc.dump();
}

}  // namespace acclaim::serve

// acclaimd transport: the NDJSON request loop over stdio or a unix socket.
//
// The daemon is deliberately boring: it reads lines, hands each to
// handle_line() (parse -> dispatch to ServeCore -> serialize), and writes
// one response line. Model evaluation never happens on the accept path
// without a resolved snapshot, and a malformed line yields an error
// response, not a dropped connection. Batch requests are the concurrency
// mechanism: a client that wants parallelism ships {"op":"batch",...} and
// the serving core fans the misses out on the global thread pool.
#pragma once

#include <iosfwd>
#include <string>

#include "serve/serve_core.hpp"

namespace acclaim::serve {

class Daemon {
 public:
  explicit Daemon(ServeCore& core) : core_(core) {}

  /// Handles one request line, returning the response line (no trailing
  /// newline). Never throws on bad input — the error becomes the response.
  std::string handle_line(const std::string& line);

  /// Serves `in` until EOF or a shutdown request; one response per line on
  /// `out`, flushed per response. Returns the number of requests handled.
  std::uint64_t serve_stream(std::istream& in, std::ostream& out);

  /// Binds a unix domain socket at `path` (replacing a stale file), then
  /// accepts connections one at a time, serving each until the peer closes.
  /// Returns (and unlinks the socket) after a shutdown request. Throws
  /// IoError on socket setup failures.
  std::uint64_t serve_unix_socket(const std::string& path);

  /// True once a shutdown request has been handled.
  bool shutdown_requested() const noexcept { return shutdown_; }

 private:
  ServeCore& core_;
  bool shutdown_ = false;
};

/// Client side: connects to the daemon's unix socket, sends one request
/// line, and returns the response line. Throws IoError on connect/IO
/// failure or a closed connection.
std::string unix_socket_request(const std::string& path, const std::string& line);

}  // namespace acclaim::serve

#include "serve/decision_cache.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace acclaim::serve {

DecisionKey quantize(std::uint64_t version, const bench::Scenario& s) {
  return DecisionKey{version, s.collective, s.nnodes, s.ppn, s.msg_bytes};
}

namespace {

int clamp_shards(int shards) {
  shards = std::clamp(shards, 1, 256);
  int p2 = 1;
  while (p2 < shards) {
    p2 <<= 1;
  }
  return p2;
}

std::size_t key_hash(const DecisionKey& key) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(key.version);
  mix(static_cast<std::uint64_t>(key.collective));
  mix(static_cast<std::uint64_t>(key.nnodes));
  mix(static_cast<std::uint64_t>(key.ppn));
  mix(key.msg_bytes);
  return static_cast<std::size_t>(h);
}

}  // namespace

DecisionCache::DecisionCache(std::size_t capacity, int shards)
    : shards_(static_cast<std::size_t>(clamp_shards(shards))),
      per_shard_capacity_(std::max<std::size_t>(1, capacity / shards_.size())) {}

DecisionCache::Shard& DecisionCache::shard_for(const DecisionKey& key) {
  return shards_[key_hash(key) & (shards_.size() - 1)];
}

std::optional<coll::Algorithm> DecisionCache::get(const DecisionKey& key) {
  static telemetry::Counter& hits = telemetry::metrics().counter("serve.cache.hits");
  static telemetry::Counter& misses = telemetry::metrics().counter("serve.cache.misses");
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    misses.add();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  hits.add();
  return it->second->second;
}

void DecisionCache::put(const DecisionKey& key, coll::Algorithm alg) {
  static telemetry::Counter& evictions = telemetry::metrics().counter("serve.cache.evictions");
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->second = alg;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.index.size() >= per_shard_capacity_) {
    const auto& victim = shard.lru.back();
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
    evictions.add();
  }
  shard.lru.emplace_front(key, alg);
  shard.index.emplace(key, shard.lru.begin());
}

DecisionCache::Stats DecisionCache::stats() const {
  Stats st;
  st.capacity = capacity();
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    st.hits += shard.hits;
    st.misses += shard.misses;
    st.evictions += shard.evictions;
    st.entries += shard.index.size();
  }
  return st;
}

std::size_t DecisionCache::capacity() const noexcept {
  return per_shard_capacity_ * shards_.size();
}

}  // namespace acclaim::serve

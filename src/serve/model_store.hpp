// acclaimd model store: sharded, read-mostly registry of published models.
//
// The serving side of ACCLAiM (ROADMAP "tuning-as-a-service daemon") keeps
// one immutable ModelSnapshot per (collective, comm size, topology signature)
// key. Publication is copy-on-write: training code fits a private
// CollectiveModel (whose fitted forest is itself immutable-once-built, see
// core/model.hpp), wraps it in a snapshot, and an atomic shared_ptr swap
// makes it visible. Queries in flight keep whatever snapshot they resolved —
// they never observe a half-published model and never block a publisher.
//
// Locking discipline:
//  * the per-shard shared_mutex guards only the key -> entry map structure;
//    writers take it exclusively only to insert a *new* key;
//  * republishing an existing key is a lock-free compare-exchange on the
//    entry's snapshot slot that only installs a higher version, so racing
//    publishers cannot leave an older model visible;
//  * readers take the shared side to resolve the entry, then an atomic load.
//    Entries are never erased, so a resolved Entry pointer stays valid for
//    the store's lifetime and hot paths may cache it (ServeCore does).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace acclaim::serve {

/// Identity of one served model. `comm_size` is the total rank count
/// (nodes x ppn) the model was tuned for; 0 is the wildcard scale a lookup
/// falls back to when no exact-scale model exists (a job-level model that
/// covers its whole trained grid). `topology` is the machine/topology
/// signature (e.g. the simnet machine name).
struct ModelKey {
  coll::Collective collective = coll::Collective::Bcast;
  int comm_size = 0;
  std::string topology = "default";

  auto operator<=>(const ModelKey&) const = default;

  std::string to_string() const;
};

/// An immutable published model. Snapshots are shared by const pointer and
/// never mutated after publish(); `version` is unique and increasing across
/// the whole store, so a (version, scenario) pair names one decision forever
/// (the decision cache keys on it).
struct ModelSnapshot {
  ModelKey key;
  std::uint64_t version = 0;
  core::CollectiveModel model;
  /// Optional transfer payload: the labeled points behind `model`, shared
  /// immutable like the snapshot itself. The serving read path never touches
  /// it; fleet warm-start (core::WarmStart) republishes from it. nullptr
  /// when the publisher attached none.
  std::shared_ptr<const std::vector<core::LabeledPoint>> support;
};

/// Result of ModelStore::nearest: the closest published snapshot of the
/// wanted collective and its (topology, scale) distance.
struct NearestMatch {
  std::shared_ptr<const ModelSnapshot> snapshot;  ///< nullptr: nothing in range
  double distance = 0.0;
};

/// The transfer metric of ModelStore::nearest. Same collective only (the
/// caller filters); |log2 comm_size delta| between two concrete scales, +0.5
/// for a wildcard (comm_size 0) candidate against a concrete query (a
/// job-level grid model transfers, but less sharply than a same-scale one),
/// +16 when the topology signatures differ (cross-machine transfer is a last
/// resort, only taken when the caller's max_distance allows it).
double model_key_distance(const ModelKey& want, const ModelKey& have);

class ModelStore {
 public:
  /// `shards` is clamped to [1, 256] and rounded up to a power of two.
  explicit ModelStore(int shards = 8);
  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Publishes a trained model under `key`, replacing any previous snapshot
  /// for the key. Returns the new snapshot's store-wide version. Under
  /// concurrent publishes to one key the highest version wins — the visible
  /// snapshot's version never moves backwards. Throws InvalidArgument if the
  /// model is untrained or its collective does not match the key. `support`
  /// optionally attaches the model's training points for warm-start transfer
  /// (see ModelSnapshot::support).
  std::uint64_t publish(const ModelKey& key, core::CollectiveModel model,
                        std::shared_ptr<const std::vector<core::LabeledPoint>> support = nullptr);

  /// The current snapshot for `key`, or nullptr if never published.
  std::shared_ptr<const ModelSnapshot> lookup(const ModelKey& key) const;

  /// lookup() with the wildcard-scale fallback: exact (collective,
  /// comm_size, topology) first, then (collective, 0, topology).
  std::shared_ptr<const ModelSnapshot> resolve(const ModelKey& key) const;

  /// The published snapshot of `key.collective` nearest to `key` under
  /// model_key_distance, or an empty match when none is within
  /// `max_distance` (inclusive). Ties break toward the smaller ModelKey, so
  /// the answer is deterministic for a given store content. This is the
  /// fleet warm-start query: "which previously tuned job looks most like
  /// mine?" — a full key scan, not a hot serving path.
  NearestMatch nearest(const ModelKey& key, double max_distance) const;

  /// Number of published keys.
  std::size_t size() const;

  /// All published keys, sorted (deterministic for stats/debug output).
  std::vector<ModelKey> keys() const;

  int shards() const noexcept { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::atomic<std::shared_ptr<const ModelSnapshot>> snap;
  };
  struct Shard {
    mutable std::shared_mutex mu;  ///< guards `entries` structure only
    std::map<ModelKey, std::unique_ptr<Entry>> entries;
  };

  Shard& shard_for(const ModelKey& key) const;

  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> next_version_{1};
};

}  // namespace acclaim::serve

// acclaimd decision cache: sharded LRU of hot (quantized features ->
// algorithm) selections.
//
// Key quantization: the forest sees a scenario as the feature row
// {log2 nodes, log2 ppn, log2 msg} + algorithm one-hot (core/feature_space).
// That encoding is an injective function of the integer scenario tuple, so
// the cache quantizes the double feature row *losslessly* back to the
// integers it was derived from: (collective, nnodes, ppn, msg_bytes). A
// lossier quantization (e.g. rounding msg to its power-of-two bucket) would
// merge scenarios the model distinguishes — non-P2 message sizes produce
// fractional log2 features and can legitimately select differently — and
// would break the contract that a cache hit is bitwise-identical to direct
// CollectiveModel::select. The snapshot version is part of the key, so
// republishing a model naturally invalidates its cached decisions (stale
// versions age out of the LRU instead of being swept).
//
// Sharding: the key hashes to one of N independent shards, each a
// mutex-guarded LRU list + ordered index. Shard mutexes are only ever held
// for O(log n) map operations — no model evaluation happens under a lock.
// Hit/miss/eviction counts feed the telemetry registry (serve.cache.*).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "benchdata/point.hpp"
#include "collectives/types.hpp"

namespace acclaim::serve {

/// Lossless quantization of one selection query: the integer tuple the
/// encoded feature row is derived from, plus the snapshot version that
/// answered it.
struct DecisionKey {
  std::uint64_t version = 0;
  coll::Collective collective = coll::Collective::Bcast;
  int nnodes = 1;
  int ppn = 1;
  std::uint64_t msg_bytes = 8;

  auto operator<=>(const DecisionKey&) const = default;
};

/// Builds the cache key for a scenario answered by snapshot `version`.
DecisionKey quantize(std::uint64_t version, const bench::Scenario& s);

class DecisionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };

  /// `capacity` is the total entry budget, split evenly across shards (each
  /// shard gets at least one slot). `shards` is clamped to [1, 256] and
  /// rounded up to a power of two.
  explicit DecisionCache(std::size_t capacity, int shards = 8);
  DecisionCache(const DecisionCache&) = delete;
  DecisionCache& operator=(const DecisionCache&) = delete;

  /// Cache probe; a hit refreshes the entry's LRU position.
  std::optional<coll::Algorithm> get(const DecisionKey& key);

  /// Inserts (or refreshes) a decision, evicting the shard's least recently
  /// used entry when the shard is full.
  void put(const DecisionKey& key, coll::Algorithm alg);

  /// Aggregated over all shards. Counts are monotonic for the cache's
  /// lifetime (they also tick the global serve.cache.* telemetry counters).
  Stats stats() const;

  std::size_t capacity() const noexcept;
  int shards() const noexcept { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. The index maps key -> list node.
    std::list<std::pair<DecisionKey, coll::Algorithm>> lru;
    std::map<DecisionKey, std::list<std::pair<DecisionKey, coll::Algorithm>>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const DecisionKey& key);

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_;
};

}  // namespace acclaim::serve

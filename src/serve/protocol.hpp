// acclaimd wire protocol: newline-delimited JSON requests and responses.
//
// One request per line, one response line per request, in order. The daemon
// serves the protocol over stdin/stdout or a unix domain socket file
// (serve/daemon.hpp); `acclaim query` speaks the client side.
//
// Requests ("op" selects the operation):
//   {"op":"ping"}
//   {"op":"query","collective":"bcast","nodes":4,"ppn":8,"msg":4096
//                [,"topology":"theta"]}
//   {"op":"batch","queries":[{query-fields...},...]}      (one response line,
//                                                          "results" array)
//   {"op":"publish","path":"model.json"[,"nodes":N,"ppn":P,"topology":T]}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses always carry "ok". Success: {"ok":true,"op":...,...}; failure:
// {"ok":false,"error":"one-line reason"}. Malformed input of any kind —
// broken JSON, wrong types, unknown ops, out-of-range values — produces an
// error *response*, never a crash or a dropped connection: every field is
// range-checked here before it reaches the serving core (this is the
// untrusted-input surface the PR's parsing bugfixes harden).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchdata/point.hpp"
#include "util/json.hpp"

namespace acclaim::serve {

enum class Op { Ping, Query, Batch, Publish, Stats, Shutdown };

/// One parsed request. Only the fields of the active op are meaningful.
struct Request {
  Op op = Op::Ping;
  /// Query: the scenario to select for; Batch: all of them.
  std::vector<bench::Scenario> queries;
  std::string topology = "default";
  /// Publish: model JSON path and the key scale (0 = wildcard).
  std::string path;
  int nodes = 0;
  int ppn = 0;
};

/// Upper bounds on untrusted numeric fields. Generous compared to any real
/// machine, tight enough that a hostile request cannot drive a
/// multi-gigabyte allocation. `nodes` and `ppn` are additionally bounded
/// jointly: kMaxNodes x kMaxPpn alone would be 2^38 (> INT_MAX), so every
/// comm size must come through checked_comm_size(), which enforces kMaxRanks
/// and keeps nnodes*ppn int-safe downstream (Scenario::nranks,
/// ModelKey::comm_size).
inline constexpr std::int64_t kMaxNodes = 1 << 22;
inline constexpr std::int64_t kMaxPpn = 1 << 16;
inline constexpr std::int64_t kMaxRanks = std::int64_t{1} << 28;
inline constexpr std::size_t kMaxBatch = 1 << 16;

/// nodes x ppn computed in 64-bit and checked against kMaxRanks; throws
/// InvalidArgument when the product exceeds the cap. The one sanctioned way
/// to turn a (nodes, ppn) pair into a comm size.
int checked_comm_size(std::int64_t nodes, std::int64_t ppn);

/// Parses one NDJSON request line. Throws ParseError (malformed JSON) or
/// InvalidArgument (schema/range violations) with a one-line message; the
/// daemon turns either into an error response.
Request parse_request(const std::string& line);

/// Serializes a request (client side of `acclaim query`).
util::Json request_to_json(const Request& req);

/// {"ok":false,"error":msg} as a compact single line.
std::string error_response(const std::string& msg);

/// {"ok":true,"op":name,...fields} serialized compactly. `fields` must be an
/// object; its entries are appended after "op".
std::string ok_response(const std::string& op, util::Json fields);

const char* op_name(Op op);

}  // namespace acclaim::serve

#include "serve/model_store.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/error.hpp"

namespace acclaim::serve {

std::string ModelKey::to_string() const {
  return std::string(coll::collective_name(collective)) + "/" +
         (comm_size == 0 ? std::string("any") : std::to_string(comm_size)) + "/" + topology;
}

namespace {

/// FNV-1a over the key fields; only used to spread keys across shards, so it
/// needs to be deterministic and cheap, not cryptographic.
std::size_t key_hash(const ModelKey& key) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(key.collective));
  mix(static_cast<std::uint64_t>(key.comm_size));
  for (char c : key.topology) {
    mix(static_cast<unsigned char>(c));
  }
  return static_cast<std::size_t>(h);
}

int clamp_shards(int shards) {
  shards = std::clamp(shards, 1, 256);
  int p2 = 1;
  while (p2 < shards) {
    p2 <<= 1;
  }
  return p2;
}

}  // namespace

ModelStore::ModelStore(int shards) : shards_(static_cast<std::size_t>(clamp_shards(shards))) {}

ModelStore::Shard& ModelStore::shard_for(const ModelKey& key) const {
  return shards_[key_hash(key) & (shards_.size() - 1)];
}

double model_key_distance(const ModelKey& want, const ModelKey& have) {
  double d = 0.0;
  if (want.topology != have.topology) {
    d += 16.0;
  }
  if (want.comm_size > 0 && have.comm_size > 0) {
    d += std::abs(std::log2(static_cast<double>(want.comm_size)) -
                  std::log2(static_cast<double>(have.comm_size)));
  } else if (want.comm_size != have.comm_size) {
    // Exactly one side is the wildcard scale.
    d += 0.5;
  }
  return d;
}

std::uint64_t ModelStore::publish(const ModelKey& key, core::CollectiveModel model,
                                  std::shared_ptr<const std::vector<core::LabeledPoint>> support) {
  require(model.trained(), "ModelStore::publish requires a trained model");
  require(model.collective() == key.collective,
          "ModelStore::publish: model collective does not match the key");
  auto snap = std::make_shared<const ModelSnapshot>(ModelSnapshot{
      key, next_version_.fetch_add(1, std::memory_order_relaxed), std::move(model),
      std::move(support)});
  Shard& shard = shard_for(key);
  Entry* entry = nullptr;
  {
    // Fast path: the key already exists — resolve it under the shared lock.
    std::shared_lock lock(shard.mu);
    if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
      entry = it->second.get();
    }
  }
  if (entry == nullptr) {
    std::unique_lock lock(shard.mu);
    entry = shard.entries.try_emplace(key, std::make_unique<Entry>()).first->second.get();
  }
  // Install only if newer: two publishers racing on one key can reach this
  // point out of version order, and the older snapshot must never end up
  // visible after the newer one was stored.
  const std::uint64_t version = snap->version;
  auto cur = entry->snap.load(std::memory_order_acquire);
  while (cur == nullptr || cur->version < version) {
    if (entry->snap.compare_exchange_weak(cur, snap, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      break;
    }
  }
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelStore::lookup(const ModelKey& key) const {
  const Shard& shard = shard_for(key);
  const Entry* entry = nullptr;
  {
    std::shared_lock lock(shard.mu);
    if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
      entry = it->second.get();
    }
  }
  return entry == nullptr ? nullptr : entry->snap.load(std::memory_order_acquire);
}

std::shared_ptr<const ModelSnapshot> ModelStore::resolve(const ModelKey& key) const {
  if (auto snap = lookup(key)) {
    return snap;
  }
  if (key.comm_size != 0) {
    return lookup(ModelKey{key.collective, 0, key.topology});
  }
  return nullptr;
}

NearestMatch ModelStore::nearest(const ModelKey& key, double max_distance) const {
  // keys() is sorted, so scanning in order and keeping strictly-better
  // matches breaks distance ties toward the smaller key deterministically.
  NearestMatch best;
  for (const ModelKey& cand : keys()) {
    if (cand.collective != key.collective) {
      continue;
    }
    const double d = model_key_distance(key, cand);
    if (d > max_distance || (best.snapshot != nullptr && d >= best.distance)) {
      continue;
    }
    // A key can race with a republish between keys() and lookup(); a newer
    // snapshot under the same key is equally valid as a transfer donor.
    if (auto snap = lookup(cand)) {
      best.snapshot = std::move(snap);
      best.distance = d;
    }
  }
  return best;
}

std::size_t ModelStore::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

std::vector<ModelKey> ModelStore::keys() const {
  std::vector<ModelKey> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace acclaim::serve

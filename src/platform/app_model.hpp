// Application-level accounting: how collective algorithm selection changes
// whole-application runtime, and when ACCLAiM's training cost amortizes
// (Fig. 15).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchdata/point.hpp"
#include "core/evaluator.hpp"

namespace acclaim::platform {

/// One collective call site in the application's inner loop.
struct WorkloadItem {
  bench::Scenario scenario;
  double calls_per_iteration = 1.0;
};

/// A (synthetic) HPC application: compute time plus a collective call mix
/// per outer iteration.
struct ApplicationProfile {
  std::string name;
  double compute_s_per_iteration = 1.0;
  std::vector<WorkloadItem> collectives;
};

/// Provides the measured latency of (scenario, algorithm) — typically a
/// Dataset lookup or a live microbenchmark.
using TimeSource = std::function<double(const bench::Scenario&, coll::Algorithm)>;

class ApplicationModel {
 public:
  explicit ApplicationModel(ApplicationProfile profile);

  const ApplicationProfile& profile() const noexcept { return profile_; }

  /// Time spent in collectives per iteration under a selection policy.
  double collective_s_per_iteration(const core::Selector& select,
                                    const TimeSource& time_us) const;

  /// Full iteration time (compute + collectives).
  double iteration_s(const core::Selector& select, const TimeSource& time_us) const;

  /// Application speedup of selector `tuned` over selector `baseline`.
  double speedup(const core::Selector& tuned, const core::Selector& baseline,
                 const TimeSource& time_us) const;

  /// Fraction of baseline iteration time spent in collectives.
  double collective_fraction(const core::Selector& baseline, const TimeSource& time_us) const;

 private:
  ApplicationProfile profile_;
};

/// Fig. 15: the minimum application runtime (seconds, measured under the
/// default selections) for which training time `training_s` is recouped by
/// an application speedup `s` > 1:  R/s + T <= R  =>  R >= T * s / (s - 1).
/// Throws InvalidArgument for s <= 1 (no speedup never amortizes).
double breakeven_runtime_s(double training_s, double app_speedup);

/// A synthetic application profile dominated by the given collective, with
/// `collective_fraction` of its baseline time in collectives. The scenarios
/// span the job's (nodes, ppn) over `msg_sizes` (small control messages are
/// weighted as more frequent, bulk messages as rare, mirroring production
/// profiles from Chunduri et al.). Pass the message sizes your time source
/// can actually serve; the default spans 64 B .. 1 MiB.
ApplicationProfile make_synthetic_app(
    const std::string& name, coll::Collective c, int nnodes, int ppn,
    double collective_fraction, const TimeSource& time_us, const core::Selector& baseline,
    const std::vector<std::uint64_t>& msg_sizes = {64, 1024, 16384, 262144, 1048576});

}  // namespace acclaim::platform

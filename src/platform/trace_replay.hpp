// Trace replay: run a recorded stream of collective calls through a
// selection policy and account the time it would cost on a given machine.
//
// This closes the loop between the Fig. 4 trace substrate and the tuner:
// instead of a synthetic scenario mix, an application's actual call stream
// (generated or recorded) is priced call-by-call, so "how much would
// ACCLAiM's rules save *this* application" becomes a one-call question.
#pragma once

#include <map>
#include <vector>

#include "core/evaluator.hpp"
#include "platform/app_model.hpp"
#include "traces/traces.hpp"

namespace acclaim::platform {

/// Replay accounting for one selector.
struct ReplayResult {
  double total_s = 0.0;                 ///< collective time across the trace
  std::size_t calls = 0;
  std::size_t distinct_scenarios = 0;   ///< unique (collective,msg) cells priced
  /// Time per collective, for attribution.
  std::map<coll::Collective, double> per_collective_s;
};

/// Prices every call of `trace` on the job geometry (nnodes, ppn) using
/// `select` for the algorithm and `time_us` for the latency. Lookups are
/// memoized per distinct (collective, msg) cell, so million-call traces
/// replay in milliseconds.
ReplayResult replay_trace(const std::vector<traces::CollectiveCall>& trace, int nnodes, int ppn,
                          const core::Selector& select, const TimeSource& time_us);

/// Convenience: speedup of `tuned` over `baseline` on the same trace.
double replay_speedup(const std::vector<traces::CollectiveCall>& trace, int nnodes, int ppn,
                      const core::Selector& tuned, const core::Selector& baseline,
                      const TimeSource& time_us);

}  // namespace acclaim::platform

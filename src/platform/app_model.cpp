#include "platform/app_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace acclaim::platform {

ApplicationModel::ApplicationModel(ApplicationProfile profile) : profile_(std::move(profile)) {
  require(profile_.compute_s_per_iteration >= 0.0, "compute time must be non-negative");
  for (const WorkloadItem& w : profile_.collectives) {
    require(w.calls_per_iteration > 0.0, "call counts must be positive");
  }
}

double ApplicationModel::collective_s_per_iteration(const core::Selector& select,
                                                    const TimeSource& time_us) const {
  double total_s = 0.0;
  for (const WorkloadItem& w : profile_.collectives) {
    const coll::Algorithm a = select(w.scenario);
    total_s += w.calls_per_iteration * time_us(w.scenario, a) * 1e-6;
  }
  return total_s;
}

double ApplicationModel::iteration_s(const core::Selector& select,
                                     const TimeSource& time_us) const {
  return profile_.compute_s_per_iteration + collective_s_per_iteration(select, time_us);
}

double ApplicationModel::speedup(const core::Selector& tuned, const core::Selector& baseline,
                                 const TimeSource& time_us) const {
  return iteration_s(baseline, time_us) / iteration_s(tuned, time_us);
}

double ApplicationModel::collective_fraction(const core::Selector& baseline,
                                             const TimeSource& time_us) const {
  const double coll_s = collective_s_per_iteration(baseline, time_us);
  return coll_s / (profile_.compute_s_per_iteration + coll_s);
}

double breakeven_runtime_s(double training_s, double app_speedup) {
  require(training_s >= 0.0, "training time must be non-negative");
  require(app_speedup > 1.0, "break-even requires a speedup greater than 1");
  return training_s * app_speedup / (app_speedup - 1.0);
}

ApplicationProfile make_synthetic_app(const std::string& name, coll::Collective c, int nnodes,
                                      int ppn, double collective_fraction,
                                      const TimeSource& time_us, const core::Selector& baseline,
                                      const std::vector<std::uint64_t>& msg_sizes) {
  require(collective_fraction > 0.0 && collective_fraction < 1.0,
          "collective fraction must be in (0, 1)");
  require(!msg_sizes.empty(), "synthetic app needs at least one message size");
  ApplicationProfile profile;
  profile.name = name;
  // Small control messages are frequent, bulk messages rare (geometric
  // falloff), mirroring production profiles (Chunduri et al.).
  double calls = 40.0;
  for (std::uint64_t msg : msg_sizes) {
    profile.collectives.push_back(WorkloadItem{bench::Scenario{c, nnodes, ppn, msg}, calls});
    calls = std::max(0.5, calls / 3.0);
  }
  // Size compute time so collectives are the requested fraction under the
  // baseline selections.
  ApplicationModel probe(profile);
  const double coll_s = probe.collective_s_per_iteration(baseline, time_us);
  profile.compute_s_per_iteration = coll_s * (1.0 - collective_fraction) / collective_fraction;
  return profile;
}

}  // namespace acclaim::platform

#include "platform/trace_replay.hpp"

#include <set>

#include "util/error.hpp"

namespace acclaim::platform {

ReplayResult replay_trace(const std::vector<traces::CollectiveCall>& trace, int nnodes, int ppn,
                          const core::Selector& select, const TimeSource& time_us) {
  require(!trace.empty(), "cannot replay an empty trace");
  require(nnodes >= 1 && ppn >= 1, "replay needs a valid job geometry");
  ReplayResult result;
  // Memoize per distinct (collective, msg) cell: traces repeat sizes heavily.
  std::map<std::pair<int, std::uint64_t>, double> cell_us;
  for (const traces::CollectiveCall& call : trace) {
    const auto key = std::make_pair(static_cast<int>(call.collective), call.msg_bytes);
    auto it = cell_us.find(key);
    if (it == cell_us.end()) {
      const bench::Scenario s{call.collective, nnodes, ppn, call.msg_bytes};
      const double us = time_us(s, select(s));
      it = cell_us.emplace(key, us).first;
    }
    result.total_s += it->second * 1e-6;
    result.per_collective_s[call.collective] += it->second * 1e-6;
    ++result.calls;
  }
  result.distinct_scenarios = cell_us.size();
  return result;
}

double replay_speedup(const std::vector<traces::CollectiveCall>& trace, int nnodes, int ppn,
                      const core::Selector& tuned, const core::Selector& baseline,
                      const TimeSource& time_us) {
  const double tuned_s = replay_trace(trace, nnodes, ppn, tuned, time_us).total_s;
  const double base_s = replay_trace(trace, nnodes, ppn, baseline, time_us).total_s;
  require(tuned_s > 0.0, "tuned replay produced zero time");
  return base_s / tuned_s;
}

}  // namespace acclaim::platform

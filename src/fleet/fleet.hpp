// Fleet-scale trace replay with warm-start model transfer (ROADMAP
// "fleet-scale trace replay").
//
// The serving story so far tunes each job in isolation. A production
// machine, however, sees a *stream* of jobs, and most of them look like a
// job the daemon has already tuned: same application family, a nearby
// scale, the same topology. This module replays such a stream — thousands
// of synthetic jobs drawn from the Fig. 4 application mix — through the
// full tune pipeline against a shared serve::ModelStore:
//
//  * every finished job publishes its per-collective models (plus the
//    labeled points behind them) under (collective, comm size, topology);
//  * every arriving job asks the store for the nearest previously tuned
//    model (ModelStore::nearest) and, when one is close enough, seeds its
//    ActiveLearner from it (core::WarmStart) — active learning then only
//    patches the disagreement region, so the convergence floor drops from
//    ActiveLearnerConfig::min_points to WarmStart::min_new_points;
//  * models become visible only at the *simulated completion time* of the
//    job that trained them, so transfer hits depend on the arrival pattern
//    exactly as they would on a real machine.
//
// Determinism contract: replay_fleet() is bitwise-deterministic for a given
// (config, empty store) across any --threads setting. The job loop is
// strictly serial — parallelism lives inside each pipeline run, which is
// itself deterministic by the golden-fingerprint contract — and every
// stochastic choice draws from util::Rng streams derived from config seeds.
// FleetResult::fingerprint condenses the whole replay into one hash the
// determinism tests and the fleet bench compare across thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/model_store.hpp"
#include "simnet/machine.hpp"
#include "traces/traces.hpp"

namespace acclaim::fleet {

struct FleetConfig {
  /// The shared machine all jobs run on; its name is the ModelKey topology
  /// signature. Must fit the largest node choice in `stream`.
  simnet::MachineConfig machine;
  /// Job mix and arrival pattern.
  traces::JobStreamSpec stream;
  /// Per-job learner configuration (benches shrink forests/caps here).
  core::ActiveLearnerConfig learner;
  /// Rule generation. The fleet turns the default guard on: its per-job
  /// models are deliberately small, and at fleet scale giving back a few
  /// percent on near-tie cells costs more than the guard's conservatism.
  core::RuleGeneratorConfig rulegen{.default_guard_margin = 0.20};

  /// Master switch: false replays the identical stream cold (the bench's
  /// baseline arm).
  bool warm_start = true;
  /// ModelStore::nearest cutoff. The default admits any same-topology donor
  /// (max |log2 scale| delta on this machine class) but rejects
  /// cross-topology transfer (+16).
  double max_transfer_distance = 8.0;
  /// WarmStart::min_new_points for transferred jobs.
  int warm_min_new_points = 16;
  /// Cap on the labeled points a job republishes (fresh points first, then
  /// inherited support) so transfer payloads stay bounded as chains grow.
  std::size_t max_support_points = 256;

  /// Each job tunes its app's top-k collectives by mix weight.
  int collectives_per_job = 2;
  /// Clamp on the per-job training message range (each job derives its own
  /// range from its application's trace spec inside these bounds).
  std::uint64_t min_msg = 8;
  std::uint64_t max_msg = 1 << 20;
  double machine_busy_fraction = 0.3;

  /// Calls sampled from the app's trace to price the tuned-vs-default
  /// speedup (see JobOutcome::speedup).
  std::size_t trace_calls = 256;
  /// Fraction of app iteration time spent outside collectives when
  /// translating the collective-time ratio into an app speedup.
  double compute_fraction = 0.7;
};

/// Everything the replay decided about one job; the unit the fingerprint
/// and the bench rows are built from.
struct JobOutcome {
  std::uint64_t job_id = 0;
  std::string app;
  int nnodes = 0;
  int ppn = 0;
  double arrival_s = 0.0;
  /// Simulated collection time this job spent training.
  double training_s = 0.0;
  /// Freshly measured points across the job's collectives.
  std::size_t points = 0;
  /// Collectives that trained from a transferred model.
  int warm_collectives = 0;
  int total_collectives = 0;
  /// Mean ModelStore::nearest distance over the warm collectives; -1 when
  /// the job trained fully cold.
  double transfer_distance = -1.0;
  /// App speedup of the tuned selection over the MPICH default, priced on
  /// the job's own trace (deterministic cost-model pricing, no noise).
  double speedup = 1.0;
  /// Fig. 15 break-even runtime for this job's training cost at `speedup`;
  /// -1 when the speedup never amortizes (<= 1).
  double breakeven_s = -1.0;
  double completion_s = 0.0;  ///< arrival_s + training_s
};

struct FleetTotals {
  std::size_t jobs = 0;
  std::size_t warm_jobs = 0;  ///< jobs with at least one transferred collective
  std::size_t points = 0;
  double training_s = 0.0;
  double mean_speedup = 0.0;
  /// Mean break-even runtime over jobs whose speedup amortizes at all, and
  /// how many do — the fleet-wide Fig. 15 extension.
  double mean_breakeven_s = 0.0;
  std::size_t amortizing_jobs = 0;
  /// Mean transfer distance over warm jobs (-1 when none).
  double mean_transfer_distance = -1.0;
  /// Completion time of the last job (simulated replay makespan).
  double makespan_s = 0.0;
};

struct FleetResult {
  std::vector<JobOutcome> jobs;
  FleetTotals totals;
  /// FNV-1a over the exact bit patterns of every per-job outcome — equal
  /// fingerprints mean bitwise-identical replays.
  std::string fingerprint;
};

/// Replays the configured job stream against `store`. The store is usually
/// empty (the replay populates it) but may carry pre-published models —
/// arriving jobs will transfer from them like from any fleet publication.
/// Throws InvalidArgument on an inconsistent config.
FleetResult replay_fleet(const FleetConfig& config, serve::ModelStore& store);

}  // namespace acclaim::fleet

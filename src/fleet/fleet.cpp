#include "fleet/fleet.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <utility>

#include "core/env.hpp"
#include "core/heuristic.hpp"
#include "platform/app_model.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace acclaim::fleet {

namespace {

/// Exact bit pattern of a double as 16 hex digits — the fingerprint must
/// distinguish values that round-trip identically through formatting.
std::string hex_bits(double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(bits >> (4 * i)) & 0xF];
  }
  return out;
}

/// The app's top-k collectives by mix weight (ties toward the smaller enum
/// value, so the tuned set is a pure function of the spec).
std::vector<coll::Collective> top_collectives(const traces::AppTraceSpec& app, int k) {
  std::vector<std::pair<double, coll::Collective>> ranked;
  for (const auto& [c, w] : app.mix) {
    ranked.emplace_back(w, c);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return static_cast<int>(a.second) < static_cast<int>(b.second);
  });
  std::vector<coll::Collective> out;
  for (const auto& [w, c] : ranked) {
    if (static_cast<int>(out.size()) >= k) {
      break;
    }
    out.push_back(c);
  }
  return out;
}

/// One finished job's publications, held back until the simulated clock
/// reaches the job's completion time.
struct PendingPublish {
  double completion_s = 0.0;
  std::uint64_t job_id = 0;
  struct Item {
    serve::ModelKey key;
    core::CollectiveModel model;
    std::shared_ptr<const std::vector<core::LabeledPoint>> support;
  };
  std::vector<Item> items;
};

struct PendingLater {
  bool operator()(const PendingPublish& a, const PendingPublish& b) const {
    if (a.completion_s != b.completion_s) {
      return a.completion_s > b.completion_s;
    }
    return a.job_id > b.job_id;
  }
};

/// Fresh points first, then inherited support rows not overridden by a
/// fresh measurement at the same (scenario, algorithm), capped.
std::vector<core::LabeledPoint> merge_support(const std::vector<core::LabeledPoint>& fresh,
                                              const std::vector<core::LabeledPoint>* inherited,
                                              std::size_t cap) {
  std::vector<core::LabeledPoint> out;
  std::set<bench::BenchmarkPoint> seen;
  for (const core::LabeledPoint& lp : fresh) {
    if (out.size() >= cap) {
      break;
    }
    if (seen.insert(lp.point).second) {
      out.push_back(lp);
    }
  }
  if (inherited != nullptr) {
    for (const core::LabeledPoint& lp : *inherited) {
      if (out.size() >= cap) {
        break;
      }
      if (seen.insert(lp.point).second) {
        out.push_back(lp);
      }
    }
  }
  return out;
}

void validate(const FleetConfig& config) {
  config.machine.validate();
  require(config.collectives_per_job >= 1, "fleet jobs must tune at least one collective");
  require(config.trace_calls >= 1, "fleet speedup pricing needs at least one trace call");
  require(config.compute_fraction >= 0.0 && config.compute_fraction < 1.0,
          "compute fraction must be in [0, 1)");
  require(config.min_msg >= 1 && config.min_msg <= config.max_msg, "bad message-size range");
  require(config.warm_min_new_points >= 1, "warm start needs min_new_points >= 1");
  require(config.max_support_points >= 1, "support cap must be at least 1");
  require(config.max_transfer_distance >= 0.0, "transfer distance cutoff must be >= 0");
  for (int n : config.stream.node_choices) {
    require(n <= config.machine.total_nodes, "job node choice exceeds the machine");
  }
}

}  // namespace

FleetResult replay_fleet(const FleetConfig& config, serve::ModelStore& store) {
  validate(config);
  const std::vector<traces::JobArrival> arrivals = traces::generate_job_stream(config.stream);
  const core::AcclaimPipeline pipeline(config.machine, config.learner, config.rulegen);
  const std::string topo_sig = config.machine.name;

  static telemetry::Counter& jobs_counter = telemetry::metrics().counter("fleet.jobs");
  static telemetry::Counter& warm_counter = telemetry::metrics().counter("fleet.warm_jobs");
  static telemetry::Gauge& training_gauge = telemetry::metrics().gauge("fleet.training_s");
  static telemetry::Histogram& distance_hist =
      telemetry::metrics().histogram("fleet.transfer_distance", {1e-3, 24});
  static telemetry::Histogram& breakeven_hist =
      telemetry::metrics().histogram("fleet.breakeven_s", {1e-2, 40});

  std::priority_queue<PendingPublish, std::vector<PendingPublish>, PendingLater> pending;
  FleetResult result;
  result.jobs.reserve(arrivals.size());
  std::ostringstream fp;

  for (const traces::JobArrival& arrival : arrivals) {
    // Models trained by earlier jobs become visible once the simulated
    // clock passes their completion — a job cannot transfer from a peer
    // still training when it arrives.
    while (!pending.empty() && pending.top().completion_s <= arrival.arrival_s) {
      for (const PendingPublish::Item& item : pending.top().items) {
        store.publish(item.key, item.model, item.support);
      }
      pending.pop();
    }

    JobOutcome outcome;
    outcome.job_id = arrival.job_id;
    outcome.app = arrival.app.name;
    outcome.nnodes = arrival.nnodes;
    outcome.ppn = arrival.ppn;
    outcome.arrival_s = arrival.arrival_s;

    const std::vector<coll::Collective> collectives =
        top_collectives(arrival.app, config.collectives_per_job);
    outcome.total_collectives = static_cast<int>(collectives.size());
    // nnodes/ppn originate from CLI-provided choice lists with no upper
    // bound, so the product must go through the joint rank cap — a plain
    // int multiply can overflow.
    const int nranks = serve::checked_comm_size(arrival.nnodes, arrival.ppn);

    core::WarmStartMap warm;
    double distance_sum = 0.0;
    if (config.warm_start) {
      for (coll::Collective c : collectives) {
        const serve::ModelKey want{c, nranks, topo_sig};
        const serve::NearestMatch match = store.nearest(want, config.max_transfer_distance);
        // A donor without its training points cannot survive a refit, so
        // only snapshots that shipped support are usable for transfer.
        if (match.snapshot == nullptr || match.snapshot->support == nullptr ||
            match.snapshot->support->empty()) {
          continue;
        }
        core::WarmStart ws;
        ws.model = match.snapshot->model;
        ws.support = *match.snapshot->support;
        ws.min_new_points = config.warm_min_new_points;
        warm.emplace(c, std::move(ws));
        distance_sum += match.distance;
        ++outcome.warm_collectives;
      }
    }
    if (outcome.warm_collectives > 0) {
      outcome.transfer_distance = distance_sum / outcome.warm_collectives;
    }

    // Each job trains the message range its application actually sends
    // (type size << count range, P2 by construction) — pricing the job's
    // trace with rules trained on a narrower range would charge the tuned
    // side for extrapolation the fleet never asked of it. The config range
    // only clamps the extremes.
    std::uint64_t app_min = ~std::uint64_t{0};
    std::uint64_t app_max = 0;
    for (const std::uint64_t ts : arrival.app.type_sizes) {
      app_min = std::min(app_min, ts << arrival.app.min_count_log2);
      app_max = std::max(app_max, ts << arrival.app.max_count_log2);
    }
    core::JobSpec spec;
    spec.collectives = collectives;
    spec.nnodes = arrival.nnodes;
    spec.ppn = arrival.ppn;
    spec.min_msg = std::clamp(app_min, config.min_msg, config.max_msg);
    spec.max_msg = std::clamp(app_max, spec.min_msg, config.max_msg);
    spec.job_seed = arrival.job_seed;
    spec.machine_busy_fraction = config.machine_busy_fraction;
    const core::PipelineResult run = pipeline.run(spec, warm);

    outcome.training_s = run.total_training_s;
    for (const core::CollectiveTrainingSummary& s : run.training) {
      outcome.points += s.points;
    }
    outcome.completion_s = arrival.arrival_s + run.total_training_s;

    // Price the job's own trace under the tuned rules vs the MPICH default
    // with the deterministic cost model (no noise): the tuned/default
    // collective-time ratio becomes the Fig. 15 app speedup.
    {
      util::Rng trace_rng = util::Rng::stream(arrival.job_seed, 0xF1EEDULL);
      const std::vector<traces::CollectiveCall> trace =
          traces::generate_trace(arrival.app, arrival.nnodes, config.trace_calls, trace_rng);
      const core::LiveEnvironment env(pipeline.topology(), run.allocation, arrival.job_seed);
      const core::SelectionEngine engine = run.engine();
      std::map<bench::BenchmarkPoint, double> price_cache;
      const auto price = [&](const bench::BenchmarkPoint& point) {
        const auto it = price_cache.find(point);
        if (it != price_cache.end()) {
          return it->second;
        }
        const double us = env.predicted_solo_us(core::ScheduledBenchmark{point, 0});
        price_cache.emplace(point, us);
        return us;
      };
      double tuned_us = 0.0;
      double default_us = 0.0;
      for (const traces::CollectiveCall& call : trace) {
        bench::Scenario s;
        s.collective = call.collective;
        s.nnodes = arrival.nnodes;
        s.ppn = arrival.ppn;
        s.msg_bytes = call.msg_bytes;
        const coll::Algorithm def = core::mpich_default_selection(s);
        const coll::Algorithm tuned = engine.covers(call.collective) ? engine.select(s) : def;
        default_us += price({s, def});
        tuned_us += price({s, tuned});
      }
      if (default_us > 0.0) {
        const double ratio = tuned_us / default_us;
        outcome.speedup =
            1.0 / (config.compute_fraction + (1.0 - config.compute_fraction) * ratio);
      }
      if (outcome.speedup > 1.0) {
        outcome.breakeven_s = platform::breakeven_runtime_s(outcome.training_s, outcome.speedup);
      }
    }

    // Queue this job's publications for its completion time; later arrivals
    // republish the same (collective, scale, topology) keys, exercising the
    // store's version ordering at fleet scale.
    PendingPublish pub;
    pub.completion_s = outcome.completion_s;
    pub.job_id = arrival.job_id;
    for (std::size_t i = 0; i < run.trained.size(); ++i) {
      const coll::Collective c = run.training[i].collective;
      const std::vector<core::LabeledPoint>* inherited = nullptr;
      if (const auto it = warm.find(c); it != warm.end()) {
        inherited = &it->second.support;
      }
      auto support = std::make_shared<const std::vector<core::LabeledPoint>>(
          merge_support(run.trained[i].points, inherited, config.max_support_points));
      pub.items.push_back(PendingPublish::Item{serve::ModelKey{c, nranks, topo_sig},
                                               run.trained[i].model, std::move(support)});
    }
    pending.push(std::move(pub));

    jobs_counter.add();
    training_gauge.add(outcome.training_s);
    if (outcome.warm_collectives > 0) {
      warm_counter.add();
      distance_hist.observe(outcome.transfer_distance);
    }
    if (outcome.breakeven_s >= 0.0) {
      breakeven_hist.observe(outcome.breakeven_s);
    }
    if (telemetry::tracer().enabled()) {
      telemetry::TraceEvent ev;
      ev.kind = telemetry::EventKind::FleetJob;
      ev.label = outcome.app;
      ev.fields["job_id"] = outcome.job_id;
      ev.fields["nnodes"] = outcome.nnodes;
      ev.fields["ppn"] = outcome.ppn;
      ev.fields["warm_collectives"] = outcome.warm_collectives;
      ev.fields["points"] = outcome.points;
      ev.fields["training_s"] = outcome.training_s;
      ev.fields["speedup"] = outcome.speedup;
      telemetry::tracer().record(std::move(ev));
    }

    fp << outcome.job_id << "," << outcome.app << "," << outcome.nnodes << "," << outcome.ppn
       << "," << hex_bits(outcome.arrival_s) << "," << hex_bits(outcome.training_s) << ","
       << outcome.points << "," << outcome.warm_collectives << ","
       << hex_bits(outcome.transfer_distance) << "," << hex_bits(outcome.speedup) << ","
       << hex_bits(outcome.breakeven_s) << ";";
    result.jobs.push_back(std::move(outcome));
  }

  // Flush publications still in flight so the store's final state covers
  // every job (tests and the CLI inspect it).
  while (!pending.empty()) {
    for (const PendingPublish::Item& item : pending.top().items) {
      store.publish(item.key, item.model, item.support);
    }
    pending.pop();
  }

  FleetTotals& t = result.totals;
  t.jobs = result.jobs.size();
  double speedup_sum = 0.0;
  double breakeven_sum = 0.0;
  double distance_sum = 0.0;
  for (const JobOutcome& j : result.jobs) {
    t.points += j.points;
    t.training_s += j.training_s;
    speedup_sum += j.speedup;
    t.makespan_s = std::max(t.makespan_s, j.completion_s);
    if (j.warm_collectives > 0) {
      ++t.warm_jobs;
      distance_sum += j.transfer_distance;
    }
    if (j.breakeven_s >= 0.0) {
      ++t.amortizing_jobs;
      breakeven_sum += j.breakeven_s;
    }
  }
  if (t.jobs > 0) {
    t.mean_speedup = speedup_sum / static_cast<double>(t.jobs);
  }
  if (t.amortizing_jobs > 0) {
    t.mean_breakeven_s = breakeven_sum / static_cast<double>(t.amortizing_jobs);
  }
  if (t.warm_jobs > 0) {
    t.mean_transfer_distance = distance_sum / static_cast<double>(t.warm_jobs);
  }

  // FNV-1a over the per-job records: cheap, deterministic, and any bit flip
  // anywhere in the replay changes it.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : fp.str()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  result.fingerprint = hex_bits(std::bit_cast<double>(h));

  AC_LOG_INFO() << "fleet: replayed " << t.jobs << " jobs (" << t.warm_jobs << " warm, "
                << t.points << " points, " << t.training_s << " s simulated training)";
  return result;
}

}  // namespace acclaim::fleet

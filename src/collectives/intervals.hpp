// Byte-interval sets used by the recursive-doubling allgather engine to
// track which parts of the destination buffer each rank currently owns.
#pragma once

#include <cstdint>
#include <vector>

namespace acclaim::coll {

/// Half-open byte range [off, off + bytes).
struct Interval {
  std::uint64_t off = 0;
  std::uint64_t bytes = 0;

  std::uint64_t end() const noexcept { return off + bytes; }
  bool operator==(const Interval&) const = default;
};

/// Sorted, coalesced set of disjoint intervals.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv);

  /// Adds a range and re-normalizes (sort + merge adjacent/overlapping).
  void add(Interval iv);

  /// Union with another set.
  void merge(const IntervalSet& other);

  const std::vector<Interval>& intervals() const noexcept { return ivs_; }
  bool empty() const noexcept { return ivs_.empty(); }
  std::uint64_t total_bytes() const noexcept;

  /// True if the set is exactly [0, bytes).
  bool covers_exactly(std::uint64_t bytes) const;

 private:
  void normalize();
  std::vector<Interval> ivs_;
};

}  // namespace acclaim::coll

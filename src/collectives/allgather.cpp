// MPI_Allgather schedule builders.
//
// ring: n-1 neighbor exchanges, bandwidth-optimal, insensitive to P2-ness.
// recursive_doubling: log2(p) rounds for power-of-two rank counts; non-P2
// counts pay fold/unfold rounds (the P2 cliff).
// bruck: log2(p)-round store-and-forward using a staging buffer, any rank
// count, plus a final local rotation.
#include <algorithm>
#include <vector>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

void build_allgather_ring(const CollParams& p, RoundSink& sink) {
  copy_send_to_recv(p, /*at_own_offset=*/true, sink);
  if (p.nranks == 1) {
    return;
  }
  const RelMap rm{p.nranks, 0};
  ring_allgather(rm, allgather_layout(p), BufKind::Recv, sink);
}

void build_allgather_recursive_doubling(const CollParams& p, RoundSink& sink) {
  copy_send_to_recv(p, /*at_own_offset=*/true, sink);
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const BlockLayout layout = allgather_layout(p);
  std::vector<IntervalSet> owned(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    owned[static_cast<std::size_t>(r)] = IntervalSet(Interval{layout.offset(r), layout.size(r)});
  }
  rdbl_allgather(RelMap{n, 0}, std::move(owned), BufKind::Recv, sink);
}

void build_allgather_bruck(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;  // uniform block size
  if (n == 1) {
    Round round;
    round.add(Round::copy(0, BufKind::Send, 0, 0, BufKind::Recv, 0, bs));
    sink.on_round(round);
    return;
  }

  // Step 0: every rank stages its own block at position 0 of Tmp.
  {
    Round round;
    for (int r = 0; r < n; ++r) {
      round.add(Round::copy(r, BufKind::Send, 0, r, BufKind::Tmp, 0, bs));
    }
    sink.on_round(round);
  }

  // Doubling store-and-forward: before the step with shift s, rank r holds
  // blocks (r, r+1, ..., r+s-1) mod n at Tmp positions 0..s-1. It sends the
  // first min(s, n-s) of them to rank (r - s) mod n, which appends them at
  // position s.
  for (int s = 1; s < n; s <<= 1) {
    const int blocks = std::min(s, n - s);
    Round round;
    for (int r = 0; r < n; ++r) {
      const int dst = ((r - s) % n + n) % n;
      round.add(Round::copy(r, BufKind::Tmp, 0, dst, BufKind::Tmp,
                            static_cast<std::uint64_t>(s) * bs,
                            static_cast<std::uint64_t>(blocks) * bs));
    }
    sink.on_round(round);
  }

  // Final rotation: Tmp position j of rank r holds block (r + j) mod n; two
  // coalesced local copies place everything at its Recv offset.
  {
    Round round;
    for (int r = 0; r < n; ++r) {
      const std::uint64_t head_blocks = static_cast<std::uint64_t>(n - r);
      round.add(Round::copy(r, BufKind::Tmp, 0, r, BufKind::Recv,
                            static_cast<std::uint64_t>(r) * bs, head_blocks * bs));
      if (r > 0) {
        round.add(Round::copy(r, BufKind::Tmp, head_blocks * bs, r, BufKind::Recv, 0,
                              static_cast<std::uint64_t>(r) * bs));
      }
    }
    sink.on_round(round);
  }
}

}  // namespace acclaim::coll::detail

#include "collectives/types.hpp"

#include "collectives/builders.hpp"
#include "util/error.hpp"

namespace acclaim::coll {

const std::vector<Collective>& all_collectives() {
  static const std::vector<Collective> kAll = {
      Collective::Allgather, Collective::Allreduce,          Collective::Bcast,
      Collective::Reduce,    Collective::Gather,             Collective::Scatter,
      Collective::Alltoall,  Collective::ReduceScatterBlock, Collective::Barrier};
  return kAll;
}

const std::vector<Collective>& paper_collectives() {
  static const std::vector<Collective> kPaper = {Collective::Allgather, Collective::Allreduce,
                                                 Collective::Bcast, Collective::Reduce};
  return kPaper;
}

const char* collective_name(Collective c) {
  switch (c) {
    case Collective::Allgather: return "allgather";
    case Collective::Allreduce: return "allreduce";
    case Collective::Bcast: return "bcast";
    case Collective::Reduce: return "reduce";
    case Collective::Gather: return "gather";
    case Collective::Scatter: return "scatter";
    case Collective::Alltoall: return "alltoall";
    case Collective::ReduceScatterBlock: return "reduce_scatter_block";
    case Collective::Barrier: return "barrier";
  }
  return "?";
}

Collective parse_collective(const std::string& name) {
  for (Collective c : all_collectives()) {
    if (name == collective_name(c)) {
      return c;
    }
  }
  throw InvalidArgument("unknown collective '" + name + "'");
}

void CollParams::validate() const {
  require(nranks >= 1, "collective requires nranks >= 1");
  require(count >= 1, "collective requires count >= 1");
  require(type_size >= 1, "collective requires type_size >= 1");
  require(root >= 0 && root < nranks, "collective root out of range");
}

BufferSizes buffer_requirements(Collective c, const CollParams& p) {
  const std::uint64_t vec = p.count * p.type_size;
  const std::uint64_t all = vec * static_cast<std::uint64_t>(p.nranks);
  switch (c) {
    case Collective::Bcast: return {0, vec, 0};
    case Collective::Reduce: return {vec, vec, 0};
    case Collective::Allreduce: return {vec, vec, 0};
    case Collective::Allgather: return {vec, all, all};
    case Collective::Gather: return {vec, all, all};
    case Collective::Scatter: return {all, vec, all};
    case Collective::Alltoall: return {all, all, all};
    case Collective::ReduceScatterBlock: return {all, vec, all};
    case Collective::Barrier: return {0, vec, 0};
  }
  throw InvalidArgument("unknown collective");
}

const std::vector<AlgorithmInfo>& all_algorithms() {
  using detail::build_allgather_bruck;
  using detail::build_allgather_recursive_doubling;
  using detail::build_allgather_ring;
  using detail::build_alltoall_bruck;
  using detail::build_alltoall_pairwise;
  using detail::build_barrier_dissemination;
  using detail::build_barrier_recursive_doubling;
  using detail::build_barrier_smp;
  using detail::build_bcast_pipeline_chain;
  using detail::build_reduce_pipeline_chain;
  using detail::build_allreduce_smp;
  using detail::build_bcast_smp_binomial;
  using detail::build_reduce_smp_binomial;
  using detail::build_gather_binomial;
  using detail::build_gather_linear;
  using detail::build_reduce_scatter_block_pairwise;
  using detail::build_reduce_scatter_block_recursive_halving;
  using detail::build_scatter_binomial;
  using detail::build_scatter_linear;
  using detail::build_allreduce_recursive_doubling;
  using detail::build_allreduce_reduce_scatter_allgather;
  using detail::build_bcast_binomial;
  using detail::build_bcast_scatter_rdbl_allgather;
  using detail::build_bcast_scatter_ring_allgather;
  using detail::build_reduce_binomial;
  using detail::build_reduce_scatter_gather;
  static const std::vector<AlgorithmInfo> kAll = {
      {Algorithm::BcastBinomial, Collective::Bcast, "binomial", false, build_bcast_binomial},
      {Algorithm::BcastScatterRecursiveDoublingAllgather, Collective::Bcast,
       "scatter_recursive_doubling_allgather", true, build_bcast_scatter_rdbl_allgather},
      {Algorithm::BcastScatterRingAllgather, Collective::Bcast, "scatter_ring_allgather", false,
       build_bcast_scatter_ring_allgather},
      {Algorithm::ReduceBinomial, Collective::Reduce, "binomial", false, build_reduce_binomial},
      {Algorithm::ReduceScatterGather, Collective::Reduce, "reduce_scatter_gather", true,
       build_reduce_scatter_gather},
      {Algorithm::AllreduceRecursiveDoubling, Collective::Allreduce, "recursive_doubling", true,
       build_allreduce_recursive_doubling},
      {Algorithm::AllreduceReduceScatterAllgather, Collective::Allreduce,
       "reduce_scatter_allgather", true, build_allreduce_reduce_scatter_allgather},
      {Algorithm::AllgatherRing, Collective::Allgather, "ring", false, build_allgather_ring},
      {Algorithm::AllgatherRecursiveDoubling, Collective::Allgather, "recursive_doubling", true,
       build_allgather_recursive_doubling},
      {Algorithm::AllgatherBruck, Collective::Allgather, "bruck", false, build_allgather_bruck},
      {Algorithm::GatherBinomial, Collective::Gather, "binomial", false, build_gather_binomial},
      {Algorithm::GatherLinear, Collective::Gather, "linear", false, build_gather_linear},
      {Algorithm::ScatterBinomial, Collective::Scatter, "binomial", false,
       build_scatter_binomial},
      {Algorithm::ScatterLinear, Collective::Scatter, "linear", false, build_scatter_linear},
      {Algorithm::AlltoallBruck, Collective::Alltoall, "bruck", false, build_alltoall_bruck},
      {Algorithm::AlltoallPairwise, Collective::Alltoall, "pairwise", true,
       build_alltoall_pairwise},
      {Algorithm::ReduceScatterBlockRecursiveHalving, Collective::ReduceScatterBlock,
       "recursive_halving", true, build_reduce_scatter_block_recursive_halving},
      {Algorithm::ReduceScatterBlockPairwise, Collective::ReduceScatterBlock, "pairwise", false,
       build_reduce_scatter_block_pairwise},
      {Algorithm::BarrierDissemination, Collective::Barrier, "dissemination", false,
       build_barrier_dissemination},
      {Algorithm::BarrierRecursiveDoubling, Collective::Barrier, "recursive_doubling", true,
       build_barrier_recursive_doubling},
      {Algorithm::BcastSmpBinomial, Collective::Bcast, "smp_binomial", false,
       build_bcast_smp_binomial, /*experimental=*/true},
      {Algorithm::ReduceSmpBinomial, Collective::Reduce, "smp_binomial", false,
       build_reduce_smp_binomial, /*experimental=*/true},
      {Algorithm::AllreduceSmp, Collective::Allreduce, "smp", true, build_allreduce_smp,
       /*experimental=*/true},
      {Algorithm::BarrierSmp, Collective::Barrier, "smp", false, build_barrier_smp,
       /*experimental=*/true},
      {Algorithm::BcastPipelineChain, Collective::Bcast, "pipeline_chain", false,
       build_bcast_pipeline_chain, /*experimental=*/true},
      {Algorithm::ReducePipelineChain, Collective::Reduce, "pipeline_chain", false,
       build_reduce_pipeline_chain, /*experimental=*/true},
  };
  return kAll;
}

const AlgorithmInfo& algorithm_info(Algorithm a) {
  const auto idx = static_cast<std::size_t>(a);
  const auto& all = all_algorithms();
  require(idx < all.size(), "algorithm id out of range");
  return all[idx];
}

std::vector<Algorithm> algorithms_for(Collective c, bool include_experimental) {
  std::vector<Algorithm> algs;
  for (const AlgorithmInfo& info : all_algorithms()) {
    if (info.collective == c && (include_experimental || !info.experimental)) {
      algs.push_back(info.alg);
    }
  }
  return algs;
}

Algorithm parse_algorithm(Collective c, const std::string& name) {
  for (const AlgorithmInfo& info : all_algorithms()) {
    if (info.collective == c && name == info.name) {
      return info.alg;
    }
  }
  throw NotFoundError("collective '" + std::string(collective_name(c)) +
                      "' has no algorithm named '" + name + "'");
}

void build_schedule(Algorithm a, const CollParams& p, minimpi::RoundSink& sink) {
  p.validate();
  algorithm_info(a).build(p, sink);
}

}  // namespace acclaim::coll

// MPI_Alltoall schedule builders.
//
// bruck: log2(p) store-and-forward rounds moving ~p/2 blocks each —
// latency-optimal for small blocks; blocks travel multiple hops so total
// traffic is ~log2(p)/2 x the direct algorithms'.
// pairwise: p-1 rounds of single-block exchanges — XOR pairing on
// power-of-two communicators (perfectly balanced bidirectional exchanges),
// cyclic shifts otherwise (MPICH does the same).
#include <algorithm>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

void build_alltoall_bruck(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  // Phase 1 — local rotation: Tmp position j <- Send block (r + j) mod n,
  // so position j holds the data that must travel exactly j hops.
  {
    Round rot;
    for (int r = 0; r < n; ++r) {
      for (int j = 0; j < n; ++j) {
        rot.add(Round::copy(r, BufKind::Send,
                            static_cast<std::uint64_t>((r + j) % n) * bs, r, BufKind::Tmp,
                            static_cast<std::uint64_t>(j) * bs, bs));
      }
    }
    sink.on_round(rot);
  }
  // Phase 2 — for every bit k: all blocks whose position has bit k set
  // advance 2^k ranks. Runs of set-bit positions are coalesced.
  for (int s = 1; s < n; s <<= 1) {
    Round round;
    for (int r = 0; r < n; ++r) {
      const int dst = (r + s) % n;
      int j = 0;
      while (j < n) {
        if ((j & s) == 0) {
          ++j;
          continue;
        }
        int end = j;
        while (end < n && (end & s) != 0) {
          ++end;
        }
        round.add(Round::copy(r, BufKind::Tmp, static_cast<std::uint64_t>(j) * bs, dst,
                              BufKind::Tmp, static_cast<std::uint64_t>(j) * bs,
                              static_cast<std::uint64_t>(end - j) * bs));
        j = end;
      }
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
  // Phase 3 — inverse rotation: position j arrived from rank (r - j) mod n.
  {
    Round rot;
    for (int r = 0; r < n; ++r) {
      for (int j = 0; j < n; ++j) {
        rot.add(Round::copy(r, BufKind::Tmp, static_cast<std::uint64_t>(j) * bs, r,
                            BufKind::Recv,
                            static_cast<std::uint64_t>(((r - j) % n + n) % n) * bs, bs));
      }
    }
    sink.on_round(rot);
  }
}

void build_alltoall_pairwise(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  // Own block first.
  {
    Round self;
    for (int r = 0; r < n; ++r) {
      self.add(Round::copy(r, BufKind::Send, static_cast<std::uint64_t>(r) * bs, r,
                           BufKind::Recv, static_cast<std::uint64_t>(r) * bs, bs));
    }
    sink.on_round(self);
  }
  const bool p2 = util::is_power_of_two(static_cast<std::uint64_t>(n));
  for (int k = 1; k < n; ++k) {
    Round round;
    for (int r = 0; r < n; ++r) {
      // XOR pairing on P2 communicators; cyclic shift otherwise.
      const int dst = p2 ? (r ^ k) : (r + k) % n;
      round.add(Round::copy(r, BufKind::Send, static_cast<std::uint64_t>(dst) * bs, dst,
                            BufKind::Recv, static_cast<std::uint64_t>(r) * bs, bs));
    }
    sink.on_round(round);
  }
}

}  // namespace acclaim::coll::detail

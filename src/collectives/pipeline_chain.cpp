// Pipelined chain algorithms (experimental family).
//
// The message is split into fixed-size segments that flow down the rank
// chain 0 -> 1 -> ... -> n-1 (relative to the root); while rank r forwards
// segment k, rank r-1 already sends it segment k+1. With S segments the
// schedule takes (n - 1) + (S - 1) rounds of one-segment hops instead of
// binomial's log2(n) full-message hops — the classic large-message bcast
// family (MPICH's pipelined chain / MVAPICH's "chain" algorithms).
#include <algorithm>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

namespace {

/// Segment layout: ceil split of `bytes` into segments of at most
/// kSegmentBytes (at least one).
constexpr std::uint64_t kSegmentBytes = 8192;

struct Segments {
  std::uint64_t seg_bytes = 0;
  int count = 1;
  std::uint64_t total = 0;

  std::uint64_t offset(int s) const { return static_cast<std::uint64_t>(s) * seg_bytes; }
  std::uint64_t size(int s) const {
    const std::uint64_t lo = offset(s);
    return std::min(seg_bytes, total - lo);
  }
};

Segments make_segments(std::uint64_t bytes) {
  Segments s;
  s.total = bytes;
  s.seg_bytes = std::min<std::uint64_t>(bytes, kSegmentBytes);
  s.count = static_cast<int>((bytes + s.seg_bytes - 1) / s.seg_bytes);
  return s;
}

}  // namespace

void build_bcast_pipeline_chain(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const RelMap rm{n, p.root};
  const Segments seg = make_segments(p.count * p.type_size);
  // Round t carries segment (t - r) over hop r -> r+1 wherever that segment
  // index is valid: a classic space-time pipeline diagram.
  const int rounds = (n - 1) + (seg.count - 1);
  for (int t = 0; t < rounds; ++t) {
    Round round;
    for (int r = 0; r < n - 1; ++r) {
      const int s = t - r;
      if (s < 0 || s >= seg.count) {
        continue;
      }
      round.add(Round::copy(rm.actual(r), BufKind::Recv, seg.offset(s), rm.actual(r + 1),
                            BufKind::Recv, seg.offset(s), seg.size(s)));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

void build_reduce_pipeline_chain(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  if (n == 1) {
    return;
  }
  // The chain runs from the far end toward the root: relative rank n-1
  // starts; each hop reduces the incoming segment into the receiver's
  // accumulator, so segments arrive at the root fully reduced.
  const RelMap rm{n, p.root};
  const Segments seg = make_segments(bytes);
  const int rounds = (n - 1) + (seg.count - 1);
  for (int t = 0; t < rounds; ++t) {
    Round round;
    for (int hop = 0; hop < n - 1; ++hop) {
      // hop moves data from relative rank (n-1-hop) to (n-2-hop).
      const int s = t - hop;
      if (s < 0 || s >= seg.count) {
        continue;
      }
      round.add(Round::combine(rm.actual(n - 1 - hop), BufKind::Recv, seg.offset(s),
                               rm.actual(n - 2 - hop), BufKind::Recv, seg.offset(s),
                               seg.size(s)));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

}  // namespace acclaim::coll::detail

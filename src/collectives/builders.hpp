// Internal shared machinery for the schedule builders.
//
// Not installed as public API: the public entry point is
// coll::build_schedule() in types.hpp. Tests may include this header to
// exercise the engines directly.
#pragma once

#include <cstdint>
#include <vector>

#include "collectives/intervals.hpp"
#include "collectives/types.hpp"
#include "minimpi/schedule.hpp"

namespace acclaim::coll::detail {

/// Rank renumbering that makes the root relative rank 0 (the standard MPICH
/// trick for rooted collectives).
struct RelMap {
  int n = 1;
  int root = 0;

  int actual(int rel) const { return (rel + root) % n; }
  int rel(int rank) const { return (rank - root + n) % n; }
};

/// Ceil-division layout of a `count`-element vector into `n` blocks of
/// `type_size`-byte elements; trailing blocks may be short or empty.
/// Block b spans bytes [offset(b), offset(b) + size(b)).
struct BlockLayout {
  BlockLayout(std::uint64_t count, std::uint64_t type_size, int n);

  std::uint64_t offset(int b) const;
  std::uint64_t size(int b) const;
  std::uint64_t total_bytes() const { return count_ * type_size_; }
  int blocks() const { return n_; }

 private:
  std::uint64_t count_;
  std::uint64_t type_size_;
  std::uint64_t block_elems_;
  int n_;
};

/// Uniform layout for allgather: block b (owned by rank b) spans
/// [b * count * ts, (b+1) * count * ts).
BlockLayout allgather_layout(const CollParams& p);

/// Binomial-tree scatter of the payload in Recv from relative rank 0 to all
/// ranks' Recv, leaving relative rank r with block r of `layout`
/// (MPIR_Scatter_for_bcast). Emits ceil(log2 n) rounds.
void scatter_for_bcast(const RelMap& rm, const BlockLayout& layout, minimpi::RoundSink& sink);

/// Recursive-doubling allgather over arbitrary per-rank interval ownership.
/// `owned[rel]` is what relative rank `rel` initially holds in `buf`; on
/// completion every rank holds the union. Non-power-of-two rank counts use a
/// fold (extras hand their intervals to a partner first) and an unfold (the
/// partner returns the full result), which is the source of the P2
/// performance cliff the paper studies (§III-B).
void rdbl_allgather(const RelMap& rm, std::vector<IntervalSet> owned, minimpi::BufKind buf,
                    minimpi::RoundSink& sink);

/// Ring allgather: n-1 rounds; relative rank r starts owning block r of
/// `layout` in `buf` and forwards one block per round to relative rank r+1.
void ring_allgather(const RelMap& rm, const BlockLayout& layout, minimpi::BufKind buf,
                    minimpi::RoundSink& sink);

/// One round of local Send -> Recv copies on all ranks (the accumulator
/// initialization for reduce-style collectives). For allgather, pass
/// `at_own_offset = true` to place each rank's contribution at its final
/// destination offset.
void copy_send_to_recv(const CollParams& p, bool at_own_offset, minimpi::RoundSink& sink);

// Schedule builders registered in the registry.
void build_bcast_binomial(const CollParams& p, minimpi::RoundSink& sink);
void build_bcast_scatter_rdbl_allgather(const CollParams& p, minimpi::RoundSink& sink);
void build_bcast_scatter_ring_allgather(const CollParams& p, minimpi::RoundSink& sink);
void build_reduce_binomial(const CollParams& p, minimpi::RoundSink& sink);
void build_reduce_scatter_gather(const CollParams& p, minimpi::RoundSink& sink);
void build_allreduce_recursive_doubling(const CollParams& p, minimpi::RoundSink& sink);
void build_allreduce_reduce_scatter_allgather(const CollParams& p, minimpi::RoundSink& sink);
void build_allgather_ring(const CollParams& p, minimpi::RoundSink& sink);
void build_allgather_recursive_doubling(const CollParams& p, minimpi::RoundSink& sink);
void build_allgather_bruck(const CollParams& p, minimpi::RoundSink& sink);
void build_gather_binomial(const CollParams& p, minimpi::RoundSink& sink);
void build_gather_linear(const CollParams& p, minimpi::RoundSink& sink);
void build_scatter_binomial(const CollParams& p, minimpi::RoundSink& sink);
void build_scatter_linear(const CollParams& p, minimpi::RoundSink& sink);
void build_alltoall_bruck(const CollParams& p, minimpi::RoundSink& sink);
void build_alltoall_pairwise(const CollParams& p, minimpi::RoundSink& sink);
void build_reduce_scatter_block_recursive_halving(const CollParams& p,
                                                  minimpi::RoundSink& sink);
void build_reduce_scatter_block_pairwise(const CollParams& p, minimpi::RoundSink& sink);
void build_barrier_dissemination(const CollParams& p, minimpi::RoundSink& sink);
void build_barrier_recursive_doubling(const CollParams& p, minimpi::RoundSink& sink);
void build_bcast_smp_binomial(const CollParams& p, minimpi::RoundSink& sink);
void build_reduce_smp_binomial(const CollParams& p, minimpi::RoundSink& sink);
void build_allreduce_smp(const CollParams& p, minimpi::RoundSink& sink);
void build_barrier_smp(const CollParams& p, minimpi::RoundSink& sink);
void build_bcast_pipeline_chain(const CollParams& p, minimpi::RoundSink& sink);
void build_reduce_pipeline_chain(const CollParams& p, minimpi::RoundSink& sink);

}  // namespace acclaim::coll::detail

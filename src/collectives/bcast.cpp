// MPI_Bcast schedule builders.
//
// Matches the MPICH algorithm family: binomial for small messages or small
// communicators, scatter + recursive-doubling allgather for large messages on
// power-of-two-friendly communicators, scatter + ring allgather for very
// large messages (bandwidth-bound, insensitive to P2-ness).
#include <vector>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

void build_bcast_binomial(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const RelMap rm{n, p.root};
  const std::uint64_t bytes = p.count * p.type_size;
  // Level-synchronous binomial tree: with descending mask, every relative
  // rank r with r % (2*mask) == 0 already holds the payload and forwards it
  // to r + mask.
  const auto top = util::ceil_power_of_two(static_cast<std::uint64_t>(n));
  for (std::uint64_t mask = top / 2; mask >= 1; mask /= 2) {
    Round round;
    for (std::uint64_t r = 0; r + mask < static_cast<std::uint64_t>(n); r += 2 * mask) {
      round.add(Round::copy(rm.actual(static_cast<int>(r)), BufKind::Recv, 0,
                            rm.actual(static_cast<int>(r + mask)), BufKind::Recv, 0, bytes));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
    if (mask == 1) {
      break;
    }
  }
}

namespace {

/// Initial per-relative-rank ownership after scatter_for_bcast: relative
/// rank r holds block r.
std::vector<IntervalSet> scatter_ownership(const BlockLayout& layout, int n) {
  std::vector<IntervalSet> owned(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    owned[static_cast<std::size_t>(r)] = IntervalSet(Interval{layout.offset(r), layout.size(r)});
  }
  return owned;
}

}  // namespace

void build_bcast_scatter_rdbl_allgather(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const RelMap rm{n, p.root};
  const BlockLayout layout(p.count, p.type_size, n);
  scatter_for_bcast(rm, layout, sink);
  rdbl_allgather(rm, scatter_ownership(layout, n), BufKind::Recv, sink);
}

void build_bcast_scatter_ring_allgather(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const RelMap rm{n, p.root};
  const BlockLayout layout(p.count, p.type_size, n);
  scatter_for_bcast(rm, layout, sink);
  ring_allgather(rm, layout, BufKind::Recv, sink);
}

}  // namespace acclaim::coll::detail

#include "collectives/intervals.hpp"

#include <algorithm>

namespace acclaim::coll {

IntervalSet::IntervalSet(Interval iv) {
  if (iv.bytes > 0) {
    ivs_.push_back(iv);
  }
}

void IntervalSet::add(Interval iv) {
  if (iv.bytes == 0) {
    return;
  }
  ivs_.push_back(iv);
  normalize();
}

void IntervalSet::merge(const IntervalSet& other) {
  ivs_.insert(ivs_.end(), other.ivs_.begin(), other.ivs_.end());
  normalize();
}

std::uint64_t IntervalSet::total_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const Interval& iv : ivs_) {
    b += iv.bytes;
  }
  return b;
}

bool IntervalSet::covers_exactly(std::uint64_t bytes) const {
  return ivs_.size() == 1 && ivs_[0].off == 0 && ivs_[0].bytes == bytes;
}

void IntervalSet::normalize() {
  if (ivs_.size() < 2) {
    return;
  }
  std::sort(ivs_.begin(), ivs_.end(),
            [](const Interval& a, const Interval& b) { return a.off < b.off; });
  std::vector<Interval> merged;
  merged.reserve(ivs_.size());
  merged.push_back(ivs_[0]);
  for (std::size_t i = 1; i < ivs_.size(); ++i) {
    Interval& last = merged.back();
    if (ivs_[i].off <= last.end()) {
      last.bytes = std::max(last.end(), ivs_[i].end()) - last.off;
    } else {
      merged.push_back(ivs_[i]);
    }
  }
  ivs_ = std::move(merged);
}

}  // namespace acclaim::coll

// MPI_Reduce schedule builders.
//
// binomial: reversed binomial tree, full vector per hop — latency-friendly,
// works for any rank count without penalty.
// reduce_scatter_gather: recursive-halving reduce-scatter followed by a
// binomial gather to the root (MPICH's large-message algorithm for
// commutative ops); non-power-of-two rank counts pay a fold round where the
// excess ranks ship their whole vector to a partner.
#include <vector>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

void build_reduce_binomial(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  if (n == 1) {
    return;
  }
  const RelMap rm{n, p.root};
  // Ascending masks: a relative rank whose lowest set bit equals `mask`
  // reduces its accumulated vector into relative rank (r - mask).
  for (int mask = 1; mask < n; mask <<= 1) {
    Round round;
    for (int r = mask; r < n; r += 2 * mask) {
      round.add(Round::combine(rm.actual(r), BufKind::Recv, 0, rm.actual(r - mask),
                               BufKind::Recv, 0, bytes));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

void build_reduce_scatter_gather(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  if (n == 1) {
    return;
  }
  const RelMap rm{n, p.root};
  const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(n)));
  const int rem = n - pof2;

  // Fold: among the first 2*rem relative ranks, odd ranks reduce their whole
  // vector into the even rank below and drop out. Participants get a compact
  // renumbering `newrank` in [0, pof2).
  if (rem > 0) {
    Round fold;
    for (int r = 1; r < 2 * rem; r += 2) {
      fold.add(Round::combine(rm.actual(r), BufKind::Recv, 0, rm.actual(r - 1), BufKind::Recv, 0,
                              bytes));
    }
    sink.on_round(fold);
  }
  auto actual_of_new = [&](int v) { return rm.actual(v < rem ? 2 * v : v + rem); };

  // Recursive-halving reduce-scatter over pof2 blocks: at each descending
  // mask, aligned pairs split their common range; each side reduces the half
  // it keeps with the half the partner sends.
  const BlockLayout layout(p.count, p.type_size, pof2);
  std::vector<int> lo(static_cast<std::size_t>(pof2), 0);
  std::vector<int> hi(static_cast<std::size_t>(pof2), pof2);
  for (int mask = pof2 >> 1; mask > 0; mask >>= 1) {
    Round round;
    for (int v = 0; v < pof2; ++v) {
      const int partner = v ^ mask;
      if (v > partner) {
        continue;
      }
      const int mid = lo[static_cast<std::size_t>(v)] +
                      (hi[static_cast<std::size_t>(v)] - lo[static_cast<std::size_t>(v)]) / 2;
      const std::uint64_t lo_off = layout.offset(lo[static_cast<std::size_t>(v)]);
      const std::uint64_t mid_off = layout.offset(mid);
      const std::uint64_t hi_off = layout.offset(hi[static_cast<std::size_t>(v)]);
      // v keeps the lower half and receives it from partner; partner keeps
      // the upper half and receives it from v.
      if (hi_off > mid_off) {
        round.add(Round::combine(actual_of_new(v), BufKind::Recv, mid_off, actual_of_new(partner),
                                 BufKind::Recv, mid_off, hi_off - mid_off));
      }
      if (mid_off > lo_off) {
        round.add(Round::combine(actual_of_new(partner), BufKind::Recv, lo_off, actual_of_new(v),
                                 BufKind::Recv, lo_off, mid_off - lo_off));
      }
      hi[static_cast<std::size_t>(v)] = mid;
      lo[static_cast<std::size_t>(partner)] = mid;
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }

  // Binomial gather to newrank 0 (= the root): ascending masks; a
  // participant whose lowest set bit equals `mask` ships its contiguous
  // range to (v - mask) and drops out.
  for (int mask = 1; mask < pof2; mask <<= 1) {
    Round round;
    for (int v = mask; v < pof2; v += 2 * mask) {
      const std::uint64_t lo_off = layout.offset(lo[static_cast<std::size_t>(v)]);
      const std::uint64_t hi_off = layout.offset(hi[static_cast<std::size_t>(v)]);
      if (hi_off > lo_off) {
        round.add(Round::copy(actual_of_new(v), BufKind::Recv, lo_off, actual_of_new(v - mask),
                              BufKind::Recv, lo_off, hi_off - lo_off));
      }
      hi[static_cast<std::size_t>(v - mask)] = hi[static_cast<std::size_t>(v)];
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

}  // namespace acclaim::coll::detail

// Collective operations, their algorithms, and the registry.
//
// The four most popular collectives from Chunduri et al. (the paper's §II-A)
// — allgather, allreduce, bcast, reduce — carry the paper's ten MPICH-style
// algorithms:
//   bcast:     binomial, scatter_recursive_doubling_allgather,
//              scatter_ring_allgather
//   reduce:    binomial, reduce_scatter_gather
//   allreduce: recursive_doubling, reduce_scatter_allgather (Rabenseifner)
//   allgather: ring, recursive_doubling, bruck
// The library additionally implements the rest of the MPICH family —
// gather, scatter, alltoall, reduce_scatter_block, barrier — so the
// registry-driven autotuner covers the full collective set a production MPI
// exposes ("MPI libraries sport a growing set of algorithms", §I):
//   gather:    binomial, linear
//   scatter:   binomial, linear
//   alltoall:  bruck, pairwise
//   reduce_scatter_block: recursive_halving, pairwise
//   barrier:   dissemination, recursive_doubling
//
// Buffer conventions (what DataExecutor must initialize / check; `n` =
// nranks, `count` elements of `type_size` bytes):
//   bcast:     payload in Recv (root holds it; all ranks end with it)
//   reduce:    input in Send on all ranks; result in Recv at root
//   allreduce: input in Send; result in Recv on all ranks
//   allgather: input in Send (count); result in Recv (n*count); bruck also
//              uses Tmp (n*count)
//   gather:    input in Send (count); result in root's Recv (n*count,
//              actual-rank order); Tmp (n*count) staging on all ranks
//   scatter:   input in root's Send (n*count, actual-rank order); result in
//              every Recv (count); Tmp (n*count) staging
//   alltoall:  input Send (n*count, block i destined to rank i); result
//              Recv (n*count, block i received from rank i); Tmp (n*count)
//   reduce_scatter_block: input Send (n*count); result Recv (count = own
//              block, reduced across ranks); Tmp (n*count) accumulator
//   barrier:   token exchanges over Recv (count elements); no data result
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/schedule.hpp"

namespace acclaim::coll {

enum class Collective : int {
  Allgather = 0,
  Allreduce = 1,
  Bcast = 2,
  Reduce = 3,
  Gather = 4,
  Scatter = 5,
  Alltoall = 6,
  ReduceScatterBlock = 7,
  Barrier = 8,
};

constexpr int kNumCollectives = 9;

/// All collectives, in enum order.
const std::vector<Collective>& all_collectives();

/// The four collectives the paper evaluates (Chunduri et al.'s most
/// popular): allgather, allreduce, bcast, reduce. The bench harnesses tune
/// exactly this set; the library supports all of all_collectives().
const std::vector<Collective>& paper_collectives();

const char* collective_name(Collective c);

/// Parses "bcast"/"allreduce"/... (case-sensitive); throws InvalidArgument.
Collective parse_collective(const std::string& name);

enum class Algorithm : int {
  BcastBinomial = 0,
  BcastScatterRecursiveDoublingAllgather,
  BcastScatterRingAllgather,
  ReduceBinomial,
  ReduceScatterGather,
  AllreduceRecursiveDoubling,
  AllreduceReduceScatterAllgather,
  AllgatherRing,
  AllgatherRecursiveDoubling,
  AllgatherBruck,
  GatherBinomial,
  GatherLinear,
  ScatterBinomial,
  ScatterLinear,
  AlltoallBruck,
  AlltoallPairwise,
  ReduceScatterBlockRecursiveHalving,
  ReduceScatterBlockPairwise,
  BarrierDissemination,
  BarrierRecursiveDoubling,
  // SMP-aware (hierarchical) family — experimental, see AlgorithmInfo.
  BcastSmpBinomial,
  ReduceSmpBinomial,
  AllreduceSmp,
  BarrierSmp,
  // Pipelined chain family — experimental, see AlgorithmInfo.
  BcastPipelineChain,
  ReducePipelineChain,
};

constexpr int kNumAlgorithms = 26;

/// Parameters of one collective invocation.
///
/// `count` is in elements of `type_size` bytes. For bcast/reduce/allreduce it
/// is the full vector length; for allgather it is the per-rank contribution
/// (OSU benchmark convention, which is also what the autotuner's
/// "message size" feature means: count * type_size).
struct CollParams {
  int nranks = 1;
  std::uint64_t count = 1;
  std::uint64_t type_size = 8;
  int root = 0;
  /// Ranks per node under the block mapping (rank r lives on node r/ppn).
  /// Only the SMP-aware (hierarchical) algorithms consult it; 1 means every
  /// rank is its own node and SMP algorithms degenerate to their flat
  /// inter-node phase.
  int ppn = 1;

  std::uint64_t message_bytes() const { return count * type_size; }

  /// Node index of a rank under the block mapping.
  int node_of(int rank) const { return rank / ppn; }
  /// Number of nodes the ranks span.
  int num_nodes() const { return (nranks + ppn - 1) / ppn; }
  /// The lowest rank of a node — the SMP algorithms' per-node leader.
  int leader_of(int node) const { return node * ppn; }

  /// Validates ranges (nranks >= 1, count >= 1, root in range); throws.
  void validate() const;
};

/// Buffer sizes (bytes) the DataExecutor needs for a collective.
struct BufferSizes {
  std::uint64_t send_bytes = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t tmp_bytes = 0;
};

BufferSizes buffer_requirements(Collective c, const CollParams& p);

/// Static description of one algorithm.
struct AlgorithmInfo {
  Algorithm alg;
  Collective collective;
  const char* name;  ///< MPICH-style CVAR name, e.g. "scatter_ring_allgather"
  /// Whether the algorithm's schedule degrades on non-power-of-two rank
  /// counts (extra fold/unfold phases). Used by docs and tests; the paper's
  /// §III-B observation that some algorithms "favor P2 feature values".
  bool p2_favoring;
  void (*build)(const CollParams&, minimpi::RoundSink&);
  /// Gated behind an opt-in, like a disabled-by-default MPICH CVAR: the
  /// autotuner and benches only see experimental algorithms when asked.
  bool experimental = false;
};

/// All registered algorithms in enum order (experimental ones included).
const std::vector<AlgorithmInfo>& all_algorithms();

const AlgorithmInfo& algorithm_info(Algorithm a);

/// Algorithms implementing one collective, in enum order. Experimental
/// algorithms (the SMP-aware family) are excluded unless requested.
std::vector<Algorithm> algorithms_for(Collective c, bool include_experimental = false);

/// Parses an algorithm by its CVAR name within a collective; throws
/// NotFoundError if no such algorithm.
Algorithm parse_algorithm(Collective c, const std::string& name);

/// Emits the algorithm's schedule into the sink. Validates params.
void build_schedule(Algorithm a, const CollParams& p, minimpi::RoundSink& sink);

}  // namespace acclaim::coll

// SMP-aware (hierarchical) collective algorithms.
//
// Real MPI libraries exploit the node hierarchy: reduce within each node to
// a per-node leader over shared memory, run the expensive inter-node phase
// over leaders only, then fan back out within the node. These algorithms
// assume the block rank-to-node mapping (rank r on node r/ppn) that our
// RankMap also uses, so their intra-node rounds really do hit the cheap
// shared-memory link class in the cost model.
//
// The family is registered as experimental (disabled-by-default CVAR in
// MPICH terms): the paper's evaluation does not include SMP algorithms, so
// the figure benches keep the published algorithm set, while tests and the
// ext_smp bench exercise these.
#include <algorithm>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

namespace {

/// Ranks of a node, [leader, leader + size).
struct NodeSpan {
  int leader = 0;
  int size = 1;
};

NodeSpan node_span(const CollParams& p, int node) {
  NodeSpan s;
  s.leader = p.leader_of(node);
  s.size = std::min(p.ppn, p.nranks - s.leader);
  return s;
}

/// Intra-node binomial bcast from each node's leader, all nodes concurrent.
/// Data lives in `buf` at offset 0 (`bytes` long).
void intra_node_bcast(const CollParams& p, BufKind buf, std::uint64_t bytes, RoundSink& sink) {
  const int max_span = std::min(p.ppn, p.nranks);
  const auto top = util::ceil_power_of_two(static_cast<std::uint64_t>(std::max(1, max_span)));
  for (std::uint64_t mask = top / 2; mask >= 1; mask /= 2) {
    Round round;
    for (int node = 0; node < p.num_nodes(); ++node) {
      const NodeSpan span = node_span(p, node);
      for (std::uint64_t r = 0; r + mask < static_cast<std::uint64_t>(span.size);
           r += 2 * mask) {
        round.add(Round::copy(span.leader + static_cast<int>(r), buf, 0,
                              span.leader + static_cast<int>(r + mask), buf, 0, bytes));
      }
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
    if (mask == 1) {
      break;
    }
  }
}

/// Intra-node binomial reduce into each node's leader (accumulators in
/// Recv), all nodes concurrent.
void intra_node_reduce(const CollParams& p, std::uint64_t bytes, RoundSink& sink) {
  const int max_span = std::min(p.ppn, p.nranks);
  for (int mask = 1; mask < max_span; mask <<= 1) {
    Round round;
    for (int node = 0; node < p.num_nodes(); ++node) {
      const NodeSpan span = node_span(p, node);
      for (int r = mask; r < span.size; r += 2 * mask) {
        round.add(Round::combine(span.leader + r, BufKind::Recv, 0, span.leader + (r - mask),
                                 BufKind::Recv, 0, bytes));
      }
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

/// Inter-node binomial bcast over leaders, rooted at `root_node`.
void leader_bcast(const CollParams& p, int root_node, BufKind buf, std::uint64_t bytes,
                  RoundSink& sink) {
  const int m = p.num_nodes();
  if (m == 1) {
    return;
  }
  const auto top = util::ceil_power_of_two(static_cast<std::uint64_t>(m));
  auto actual = [&](int rel) { return p.leader_of((rel + root_node) % m); };
  for (std::uint64_t mask = top / 2; mask >= 1; mask /= 2) {
    Round round;
    for (std::uint64_t r = 0; r + mask < static_cast<std::uint64_t>(m); r += 2 * mask) {
      round.add(Round::copy(actual(static_cast<int>(r)), buf, 0,
                            actual(static_cast<int>(r + mask)), buf, 0, bytes));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
    if (mask == 1) {
      break;
    }
  }
}

/// Inter-node binomial reduce over leaders into `root_node`'s leader.
void leader_reduce(const CollParams& p, int root_node, std::uint64_t bytes, RoundSink& sink) {
  const int m = p.num_nodes();
  auto actual = [&](int rel) { return p.leader_of((rel + root_node) % m); };
  for (int mask = 1; mask < m; mask <<= 1) {
    Round round;
    for (int r = mask; r < m; r += 2 * mask) {
      round.add(Round::combine(actual(r), BufKind::Recv, 0, actual(r - mask), BufKind::Recv, 0,
                               bytes));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

}  // namespace

void build_bcast_smp_binomial(const CollParams& p, RoundSink& sink) {
  const std::uint64_t bytes = p.count * p.type_size;
  const int root_node = p.node_of(p.root);
  // Hand the payload to the root node's leader if the root is not it.
  if (p.root != p.leader_of(root_node)) {
    Round round;
    round.add(Round::copy(p.root, BufKind::Recv, 0, p.leader_of(root_node), BufKind::Recv, 0,
                          bytes));
    sink.on_round(round);
  }
  leader_bcast(p, root_node, BufKind::Recv, bytes, sink);
  intra_node_bcast(p, BufKind::Recv, bytes, sink);
}

void build_reduce_smp_binomial(const CollParams& p, RoundSink& sink) {
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  intra_node_reduce(p, bytes, sink);
  const int root_node = p.node_of(p.root);
  leader_reduce(p, root_node, bytes, sink);
  // The result sits at the root node's leader; move it to the root proper.
  if (p.root != p.leader_of(root_node)) {
    Round round;
    round.add(Round::copy(p.leader_of(root_node), BufKind::Recv, 0, p.root, BufKind::Recv, 0,
                          bytes));
    sink.on_round(round);
  }
}

void build_allreduce_smp(const CollParams& p, RoundSink& sink) {
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  intra_node_reduce(p, bytes, sink);
  // Leaders run a flat recursive-doubling allreduce on their node sums.
  const int m = p.num_nodes();
  if (m > 1) {
    const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(m)));
    const int rem = m - pof2;
    auto leader_of_new = [&](int v) { return p.leader_of(v < rem ? 2 * v : v + rem); };
    if (rem > 0) {
      Round fold;
      for (int r = 1; r < 2 * rem; r += 2) {
        fold.add(Round::combine(p.leader_of(r), BufKind::Recv, 0, p.leader_of(r - 1),
                                BufKind::Recv, 0, bytes));
      }
      sink.on_round(fold);
    }
    for (int mask = 1; mask < pof2; mask <<= 1) {
      Round round;
      for (int v = 0; v < pof2; ++v) {
        const int partner = v ^ mask;
        if (v < partner) {
          round.add(Round::combine(leader_of_new(v), BufKind::Recv, 0, leader_of_new(partner),
                                   BufKind::Recv, 0, bytes));
          round.add(Round::combine(leader_of_new(partner), BufKind::Recv, 0, leader_of_new(v),
                                   BufKind::Recv, 0, bytes));
        }
      }
      sink.on_round(round);
    }
    if (rem > 0) {
      Round unfold;
      for (int r = 1; r < 2 * rem; r += 2) {
        unfold.add(Round::copy(p.leader_of(r - 1), BufKind::Recv, 0, p.leader_of(r),
                               BufKind::Recv, 0, bytes));
      }
      sink.on_round(unfold);
    }
  }
  intra_node_bcast(p, BufKind::Recv, bytes, sink);
}

void build_barrier_smp(const CollParams& p, RoundSink& sink) {
  const std::uint64_t token = p.count * p.type_size;
  // Gather signals to leaders, disseminate across leaders, release.
  intra_node_reduce(p, token, sink);
  const int m = p.num_nodes();
  if (m > 1) {
    for (int s = 1; s < m; s <<= 1) {
      Round round;
      for (int node = 0; node < m; ++node) {
        round.add(Round::copy(p.leader_of(node), BufKind::Recv, 0,
                              p.leader_of((node + s) % m), BufKind::Recv, 0, token));
      }
      sink.on_round(round);
    }
  }
  intra_node_bcast(p, BufKind::Recv, token, sink);
}

}  // namespace acclaim::coll::detail

// MPI_Gather / MPI_Scatter schedule builders.
//
// binomial: the MPICH tree algorithm — log2(p) rounds with geometrically
// growing (gather) or shrinking (scatter) payloads, staged in Tmp in
// relative-rank order and rotated to/from the actual-rank layout at the
// root.
// linear: the direct algorithm — the root exchanges with every rank
// individually; one conceptual round, serialized at the root's NIC by the
// contention model. Competitive for small communicators / tiny payloads
// where tree staging overhead dominates.
#include <algorithm>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

namespace {

/// Root-side rotation between relative-rank order (offset rel*bs) and
/// actual-rank order (offset ((rel+root)%n)*bs). `to_actual` selects the
/// direction. Emits one round of 1-2 local copies.
void rotate_root(int root, int n, std::uint64_t bs, BufKind rel_buf, BufKind actual_buf,
                 bool to_actual, RoundSink& sink) {
  Round round;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * bs;
  if (root == 0) {
    round.add(Round::copy(root, to_actual ? rel_buf : actual_buf, 0, root,
                          to_actual ? actual_buf : rel_buf, 0, total));
  } else {
    // Relative block r lives at actual offset ((r+root) mod n): the first
    // n-root relative blocks map to the tail, the rest wrap to the front.
    const std::uint64_t head_blocks = static_cast<std::uint64_t>(n - root);
    const std::uint64_t rel_split = head_blocks * bs;
    const std::uint64_t act_off = static_cast<std::uint64_t>(root) * bs;
    if (to_actual) {
      round.add(Round::copy(root, rel_buf, 0, root, actual_buf, act_off, rel_split));
      round.add(Round::copy(root, rel_buf, rel_split, root, actual_buf, 0, total - rel_split));
    } else {
      round.add(Round::copy(root, actual_buf, act_off, root, rel_buf, 0, rel_split));
      round.add(Round::copy(root, actual_buf, 0, root, rel_buf, rel_split, total - rel_split));
    }
  }
  sink.on_round(round);
}

}  // namespace

void build_gather_binomial(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  const RelMap rm{n, p.root};
  // Stage every rank's contribution at its relative slot of its own Tmp.
  {
    Round stage;
    for (int r = 0; r < n; ++r) {
      stage.add(Round::copy(rm.actual(r), BufKind::Send, 0, rm.actual(r), BufKind::Tmp,
                            static_cast<std::uint64_t>(r) * bs, bs));
    }
    sink.on_round(stage);
  }
  // Ascending masks: a relative rank whose lowest set bit equals `mask`
  // ships its accumulated contiguous range [r, min(r+mask, n)) to r - mask.
  for (int mask = 1; mask < n; mask <<= 1) {
    Round round;
    for (int r = mask; r < n; r += 2 * mask) {
      const int blocks = std::min(mask, n - r);
      round.add(Round::copy(rm.actual(r), BufKind::Tmp, static_cast<std::uint64_t>(r) * bs,
                            rm.actual(r - mask), BufKind::Tmp,
                            static_cast<std::uint64_t>(r) * bs,
                            static_cast<std::uint64_t>(blocks) * bs));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
  // Root rotates the relative-rank staging into actual-rank order.
  rotate_root(p.root, n, bs, BufKind::Tmp, BufKind::Recv, /*to_actual=*/true, sink);
}

void build_gather_linear(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  Round round;
  for (int r = 0; r < n; ++r) {
    // Everyone (root included) delivers straight into the root's Recv at
    // its actual-rank offset; the contention model serializes the root NIC.
    round.add(Round::copy(r, BufKind::Send, 0, p.root, BufKind::Recv,
                          static_cast<std::uint64_t>(r) * bs, bs));
  }
  sink.on_round(round);
}

void build_scatter_binomial(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  const RelMap rm{n, p.root};
  // Root rotates its actual-rank Send layout into relative order in Tmp.
  rotate_root(p.root, n, bs, BufKind::Tmp, BufKind::Send, /*to_actual=*/false, sink);
  // Descending masks: the holder of [r, r+2*mask) forwards the upper half.
  const auto top = util::ceil_power_of_two(static_cast<std::uint64_t>(n));
  for (std::uint64_t mask = top / 2; mask >= 1; mask /= 2) {
    Round round;
    for (std::uint64_t r = 0; r + mask < static_cast<std::uint64_t>(n); r += 2 * mask) {
      const int first = static_cast<int>(r + mask);
      const int blocks =
          static_cast<int>(std::min(r + 2 * mask, static_cast<std::uint64_t>(n))) - first;
      round.add(Round::copy(rm.actual(static_cast<int>(r)), BufKind::Tmp,
                            static_cast<std::uint64_t>(first) * bs, rm.actual(first),
                            BufKind::Tmp, static_cast<std::uint64_t>(first) * bs,
                            static_cast<std::uint64_t>(blocks) * bs));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
    if (mask == 1) {
      break;
    }
  }
  // Every rank lands its own block in Recv.
  Round finish;
  for (int r = 0; r < n; ++r) {
    finish.add(Round::copy(rm.actual(r), BufKind::Tmp, static_cast<std::uint64_t>(r) * bs,
                           rm.actual(r), BufKind::Recv, 0, bs));
  }
  sink.on_round(finish);
}

void build_scatter_linear(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  Round round;
  for (int r = 0; r < n; ++r) {
    round.add(Round::copy(p.root, BufKind::Send, static_cast<std::uint64_t>(r) * bs, r,
                          BufKind::Recv, 0, bs));
  }
  sink.on_round(round);
}

}  // namespace acclaim::coll::detail

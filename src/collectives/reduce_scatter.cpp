// MPI_Reduce_scatter_block schedule builders.
//
// recursive_halving: MPICH's commutative algorithm — log2(p) halving
// exchanges over a partitioned accumulator. Non-power-of-two rank counts
// fold the excess ranks into partners first (a full-vector reduce) and the
// partner carries both target blocks through the halving — the familiar P2
// cliff.
// pairwise: p-1 cyclic rounds; each rank ships the source block destined
// for its round partner straight out of its Send buffer — no staging,
// insensitive to P2-ness, bandwidth-bound.
#include <algorithm>
#include <vector>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

void build_reduce_scatter_block_pairwise(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  // Own contribution first.
  {
    Round self;
    for (int r = 0; r < n; ++r) {
      self.add(Round::copy(r, BufKind::Send, static_cast<std::uint64_t>(r) * bs, r,
                           BufKind::Recv, 0, bs));
    }
    sink.on_round(self);
  }
  for (int k = 1; k < n; ++k) {
    Round round;
    for (int r = 0; r < n; ++r) {
      const int dst = (r + k) % n;
      round.add(Round::combine(r, BufKind::Send, static_cast<std::uint64_t>(dst) * bs, dst,
                               BufKind::Recv, 0, bs));
    }
    sink.on_round(round);
  }
}

void build_reduce_scatter_block_recursive_halving(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bs = p.count * p.type_size;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * bs;
  // Accumulator: full vector in Tmp on every rank.
  {
    Round stage;
    for (int r = 0; r < n; ++r) {
      stage.add(Round::copy(r, BufKind::Send, 0, r, BufKind::Tmp, 0, total));
    }
    sink.on_round(stage);
  }
  if (n == 1) {
    Round finish;
    finish.add(Round::copy(0, BufKind::Tmp, 0, 0, BufKind::Recv, 0, bs));
    sink.on_round(finish);
    return;
  }
  const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(n)));
  const int rem = n - pof2;

  // Fold: odd ranks below 2*rem reduce their whole accumulator into the
  // even rank and drop out; that partner now also owns the extra's block.
  if (rem > 0) {
    Round fold;
    for (int r = 1; r < 2 * rem; r += 2) {
      fold.add(Round::combine(r, BufKind::Tmp, 0, r - 1, BufKind::Tmp, 0, total));
    }
    sink.on_round(fold);
  }
  auto actual_of_new = [&](int v) { return v < rem ? 2 * v : v + rem; };
  // Participant v is responsible for the contiguous actual-block range
  // cuts[v]..cuts[v+1): two blocks when it absorbed an extra, one otherwise.
  std::vector<int> cuts(static_cast<std::size_t>(pof2) + 1, 0);
  for (int v = 0; v < pof2; ++v) {
    cuts[static_cast<std::size_t>(v) + 1] =
        cuts[static_cast<std::size_t>(v)] + (v < rem ? 2 : 1);
  }

  // Recursive halving over participant ranges [lo, hi) in participant
  // units; byte boundaries come from the cuts.
  std::vector<int> lo(static_cast<std::size_t>(pof2), 0);
  std::vector<int> hi(static_cast<std::size_t>(pof2), pof2);
  auto off = [&](int participant) {
    return static_cast<std::uint64_t>(cuts[static_cast<std::size_t>(participant)]) * bs;
  };
  for (int mask = pof2 >> 1; mask > 0; mask >>= 1) {
    Round round;
    for (int v = 0; v < pof2; ++v) {
      const int partner = v ^ mask;
      if (v > partner) {
        continue;
      }
      const int mid = lo[static_cast<std::size_t>(v)] +
                      (hi[static_cast<std::size_t>(v)] - lo[static_cast<std::size_t>(v)]) / 2;
      const std::uint64_t lo_off = off(lo[static_cast<std::size_t>(v)]);
      const std::uint64_t mid_off = off(mid);
      const std::uint64_t hi_off = off(hi[static_cast<std::size_t>(v)]);
      if (hi_off > mid_off) {
        round.add(Round::combine(actual_of_new(v), BufKind::Tmp, mid_off,
                                 actual_of_new(partner), BufKind::Tmp, mid_off,
                                 hi_off - mid_off));
      }
      if (mid_off > lo_off) {
        round.add(Round::combine(actual_of_new(partner), BufKind::Tmp, lo_off,
                                 actual_of_new(v), BufKind::Tmp, lo_off, mid_off - lo_off));
      }
      hi[static_cast<std::size_t>(v)] = mid;
      lo[static_cast<std::size_t>(partner)] = mid;
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }

  // Delivery: participant v holds the fully reduced range cuts[v]..cuts[v+1).
  // Its own block lands locally; an absorbed extra's block is sent to it.
  Round deliver;
  for (int v = 0; v < pof2; ++v) {
    const int a = actual_of_new(v);
    deliver.add(Round::copy(a, BufKind::Tmp, static_cast<std::uint64_t>(a) * bs, a,
                            BufKind::Recv, 0, bs));
    if (v < rem) {
      const int extra = 2 * v + 1;
      deliver.add(Round::copy(a, BufKind::Tmp, static_cast<std::uint64_t>(extra) * bs, extra,
                              BufKind::Recv, 0, bs));
    }
  }
  sink.on_round(deliver);
}

}  // namespace acclaim::coll::detail

// MPI_Allreduce schedule builders.
//
// recursive_doubling: log2(p) exchanges of the full vector — the
// latency-optimal choice for small messages.
// reduce_scatter_allgather (Rabenseifner): recursive-halving reduce-scatter
// followed by a recursive-doubling allgather — bandwidth-optimal for large
// messages. Both pay fold/unfold rounds on non-power-of-two rank counts.
#include <algorithm>
#include <vector>

#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

namespace {

/// Shared non-P2 fold: among the first 2*rem ranks, odd ranks reduce their
/// accumulator into the even rank below and drop out.
void fold_extras(int rem, std::uint64_t bytes, RoundSink& sink) {
  if (rem == 0) {
    return;
  }
  Round fold;
  for (int r = 1; r < 2 * rem; r += 2) {
    fold.add(Round::combine(r, BufKind::Recv, 0, r - 1, BufKind::Recv, 0, bytes));
  }
  sink.on_round(fold);
}

/// Shared non-P2 unfold: participants return the finished vector to the
/// dropped ranks.
void unfold_extras(int rem, std::uint64_t bytes, RoundSink& sink) {
  if (rem == 0) {
    return;
  }
  Round unfold;
  for (int r = 1; r < 2 * rem; r += 2) {
    unfold.add(Round::copy(r - 1, BufKind::Recv, 0, r, BufKind::Recv, 0, bytes));
  }
  sink.on_round(unfold);
}

int actual_of_new(int v, int rem) { return v < rem ? 2 * v : v + rem; }

}  // namespace

void build_allreduce_recursive_doubling(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  if (n == 1) {
    return;
  }
  const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(n)));
  const int rem = n - pof2;
  fold_extras(rem, bytes, sink);
  for (int mask = 1; mask < pof2; mask <<= 1) {
    Round round;
    for (int v = 0; v < pof2; ++v) {
      const int partner = v ^ mask;
      if (v < partner) {
        // Both directions read the pre-round accumulators (sendrecv
        // semantics), so a symmetric exchange with reduce is exact.
        round.add(Round::combine(actual_of_new(v, rem), BufKind::Recv, 0,
                                 actual_of_new(partner, rem), BufKind::Recv, 0, bytes));
        round.add(Round::combine(actual_of_new(partner, rem), BufKind::Recv, 0,
                                 actual_of_new(v, rem), BufKind::Recv, 0, bytes));
      }
    }
    sink.on_round(round);
  }
  unfold_extras(rem, bytes, sink);
}

void build_allreduce_reduce_scatter_allgather(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  const std::uint64_t bytes = p.count * p.type_size;
  copy_send_to_recv(p, /*at_own_offset=*/false, sink);
  if (n == 1) {
    return;
  }
  const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(n)));
  const int rem = n - pof2;
  fold_extras(rem, bytes, sink);

  // Recursive-halving reduce-scatter (identical structure to the reduce
  // variant): participant v ends owning block v of a pof2-way layout.
  const BlockLayout layout(p.count, p.type_size, pof2);
  std::vector<int> lo(static_cast<std::size_t>(pof2), 0);
  std::vector<int> hi(static_cast<std::size_t>(pof2), pof2);
  for (int mask = pof2 >> 1; mask > 0; mask >>= 1) {
    Round round;
    for (int v = 0; v < pof2; ++v) {
      const int partner = v ^ mask;
      if (v > partner) {
        continue;
      }
      const int mid = lo[static_cast<std::size_t>(v)] +
                      (hi[static_cast<std::size_t>(v)] - lo[static_cast<std::size_t>(v)]) / 2;
      const std::uint64_t lo_off = layout.offset(lo[static_cast<std::size_t>(v)]);
      const std::uint64_t mid_off = layout.offset(mid);
      const std::uint64_t hi_off = layout.offset(hi[static_cast<std::size_t>(v)]);
      if (hi_off > mid_off) {
        round.add(Round::combine(actual_of_new(v, rem), BufKind::Recv, mid_off,
                                 actual_of_new(partner, rem), BufKind::Recv, mid_off,
                                 hi_off - mid_off));
      }
      if (mid_off > lo_off) {
        round.add(Round::combine(actual_of_new(partner, rem), BufKind::Recv, lo_off,
                                 actual_of_new(v, rem), BufKind::Recv, lo_off,
                                 mid_off - lo_off));
      }
      hi[static_cast<std::size_t>(v)] = mid;
      lo[static_cast<std::size_t>(partner)] = mid;
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }

  // Recursive-doubling allgather: ascending masks, aligned pairs swap their
  // contiguous owned ranges; ranges double each round.
  for (int mask = 1; mask < pof2; mask <<= 1) {
    Round round;
    for (int v = 0; v < pof2; ++v) {
      const int partner = v ^ mask;
      if (v > partner) {
        continue;
      }
      const std::uint64_t v_lo = layout.offset(lo[static_cast<std::size_t>(v)]);
      const std::uint64_t v_hi = layout.offset(hi[static_cast<std::size_t>(v)]);
      const std::uint64_t p_lo = layout.offset(lo[static_cast<std::size_t>(partner)]);
      const std::uint64_t p_hi = layout.offset(hi[static_cast<std::size_t>(partner)]);
      if (v_hi > v_lo) {
        round.add(Round::copy(actual_of_new(v, rem), BufKind::Recv, v_lo,
                              actual_of_new(partner, rem), BufKind::Recv, v_lo, v_hi - v_lo));
      }
      if (p_hi > p_lo) {
        round.add(Round::copy(actual_of_new(partner, rem), BufKind::Recv, p_lo,
                              actual_of_new(v, rem), BufKind::Recv, p_lo, p_hi - p_lo));
      }
      const int new_lo = std::min(lo[static_cast<std::size_t>(v)],
                                  lo[static_cast<std::size_t>(partner)]);
      const int new_hi = std::max(hi[static_cast<std::size_t>(v)],
                                  hi[static_cast<std::size_t>(partner)]);
      lo[static_cast<std::size_t>(v)] = lo[static_cast<std::size_t>(partner)] = new_lo;
      hi[static_cast<std::size_t>(v)] = hi[static_cast<std::size_t>(partner)] = new_hi;
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
  unfold_extras(rem, bytes, sink);
}

}  // namespace acclaim::coll::detail

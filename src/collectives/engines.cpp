// Shared schedule engines: scatter-for-bcast, recursive-doubling allgather
// over interval sets, ring allgather, and the accumulator-initialization
// round.
#include <algorithm>

#include "collectives/builders.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

BlockLayout::BlockLayout(std::uint64_t count, std::uint64_t type_size, int n)
    : count_(count), type_size_(type_size), n_(n) {
  require(n >= 1, "BlockLayout requires n >= 1");
  require(type_size >= 1, "BlockLayout requires type_size >= 1");
  block_elems_ = (count + static_cast<std::uint64_t>(n) - 1) / static_cast<std::uint64_t>(n);
}

std::uint64_t BlockLayout::offset(int b) const {
  require(b >= 0 && b <= n_, "block index out of range");
  return std::min(static_cast<std::uint64_t>(b) * block_elems_, count_) * type_size_;
}

std::uint64_t BlockLayout::size(int b) const {
  require(b >= 0 && b < n_, "block index out of range");
  const std::uint64_t lo = std::min(static_cast<std::uint64_t>(b) * block_elems_, count_);
  const std::uint64_t hi =
      std::min((static_cast<std::uint64_t>(b) + 1) * block_elems_, count_);
  return (hi - lo) * type_size_;
}

BlockLayout allgather_layout(const CollParams& p) {
  // Uniform blocks: count elements per rank, laid out rank-major. With
  // count*n total elements, ceil division gives exactly `count` per block.
  return BlockLayout(p.count * static_cast<std::uint64_t>(p.nranks), p.type_size, p.nranks);
}

void scatter_for_bcast(const RelMap& rm, const BlockLayout& layout, RoundSink& sink) {
  const int n = rm.n;
  if (n == 1) {
    return;
  }
  // Level-synchronous binomial scatter: at the round with the given mask,
  // every relative rank r with r % (2*mask) == 0 holds blocks [r, r+2*mask)
  // and sends the upper half [r+mask, r+2*mask) to r+mask.
  const auto top = static_cast<std::uint64_t>(util::ceil_power_of_two(static_cast<std::uint64_t>(n)));
  for (std::uint64_t mask = top / 2; mask >= 1; mask /= 2) {
    Round round;
    for (std::uint64_t r = 0; r + mask < static_cast<std::uint64_t>(n); r += 2 * mask) {
      const int first = static_cast<int>(r + mask);
      const int last = static_cast<int>(std::min(r + 2 * mask, static_cast<std::uint64_t>(n)));
      const std::uint64_t off = layout.offset(first);
      const std::uint64_t bytes = layout.offset(last) - off;
      if (bytes == 0) {
        continue;
      }
      round.add(Round::copy(rm.actual(static_cast<int>(r)), BufKind::Recv, off,
                            rm.actual(first), BufKind::Recv, off, bytes));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
    if (mask == 1) {
      break;
    }
  }
}

void rdbl_allgather(const RelMap& rm, std::vector<IntervalSet> owned, BufKind buf,
                    RoundSink& sink) {
  const int n = rm.n;
  require(static_cast<int>(owned.size()) == n, "rdbl_allgather: owned.size() must equal n");
  if (n == 1) {
    return;
  }
  const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(n)));
  const int rem = n - pof2;

  auto send_set = [&](Round& round, int src_rel, int dst_rel, const IntervalSet& set) {
    for (const Interval& iv : set.intervals()) {
      round.add(Round::copy(rm.actual(src_rel), buf, iv.off, rm.actual(dst_rel), buf, iv.off,
                            iv.bytes));
    }
  };

  // Fold: extra ranks pof2+e hand their intervals to partner e.
  if (rem > 0) {
    Round fold;
    for (int e = 0; e < rem; ++e) {
      const int extra = pof2 + e;
      send_set(fold, extra, e, owned[static_cast<std::size_t>(extra)]);
      owned[static_cast<std::size_t>(e)].merge(owned[static_cast<std::size_t>(extra)]);
    }
    if (!fold.empty()) {
      sink.on_round(fold);
    }
  }

  // Recursive doubling among the pof2 participants: aligned pairs exchange
  // everything they own; both sides end with the union.
  for (int mask = 1; mask < pof2; mask <<= 1) {
    Round round;
    for (int r = 0; r < pof2; ++r) {
      const int partner = r ^ mask;
      // Emit each pair's two directions once (from the lower rank's view).
      if (r < partner) {
        send_set(round, r, partner, owned[static_cast<std::size_t>(r)]);
        send_set(round, partner, r, owned[static_cast<std::size_t>(partner)]);
      }
    }
    for (int r = 0; r < pof2; ++r) {
      const int partner = r ^ mask;
      if (r < partner) {
        IntervalSet u = owned[static_cast<std::size_t>(r)];
        u.merge(owned[static_cast<std::size_t>(partner)]);
        owned[static_cast<std::size_t>(r)] = u;
        owned[static_cast<std::size_t>(partner)] = std::move(u);
      }
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }

  // Unfold: partners return the complete result to the extras — a full-size
  // extra send, the non-P2 penalty.
  if (rem > 0) {
    Round unfold;
    for (int e = 0; e < rem; ++e) {
      send_set(unfold, e, pof2 + e, owned[static_cast<std::size_t>(e)]);
      owned[static_cast<std::size_t>(pof2 + e)] = owned[static_cast<std::size_t>(e)];
    }
    if (!unfold.empty()) {
      sink.on_round(unfold);
    }
  }
}

void ring_allgather(const RelMap& rm, const BlockLayout& layout, BufKind buf, RoundSink& sink) {
  const int n = rm.n;
  if (n == 1) {
    return;
  }
  for (int step = 0; step < n - 1; ++step) {
    Round round;
    for (int r = 0; r < n; ++r) {
      // Relative rank r forwards the block it received `step` rounds ago.
      const int block = ((r - step) % n + n) % n;
      const std::uint64_t bytes = layout.size(block);
      if (bytes == 0) {
        continue;
      }
      round.add(Round::copy(rm.actual(r), buf, layout.offset(block), rm.actual((r + 1) % n), buf,
                            layout.offset(block), bytes));
    }
    if (!round.empty()) {
      sink.on_round(round);
    }
  }
}

void copy_send_to_recv(const CollParams& p, bool at_own_offset, RoundSink& sink) {
  const std::uint64_t bytes = p.count * p.type_size;
  Round round;
  for (int r = 0; r < p.nranks; ++r) {
    const std::uint64_t dst_off = at_own_offset ? static_cast<std::uint64_t>(r) * bytes : 0;
    round.add(Round::copy(r, BufKind::Send, 0, r, BufKind::Recv, dst_off, bytes));
  }
  sink.on_round(round);
}

}  // namespace acclaim::coll::detail

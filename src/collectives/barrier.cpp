// MPI_Barrier schedule builders.
//
// dissemination: ceil(log2 p) rounds; in round k every rank signals
// (rank + 2^k) mod p — works for any rank count and is MPICH's default.
// recursive_doubling: token exchanges between XOR partners; non-power-of-two
// counts pay fold/unfold signal rounds, making it P2-favoring.
//
// Barriers move no payload; tokens are `count * type_size` bytes written at
// offset 0 of Recv (callers normally use count = 1).
#include "collectives/builders.hpp"
#include "util/rng.hpp"

namespace acclaim::coll::detail {

using minimpi::BufKind;
using minimpi::Round;
using minimpi::RoundSink;

void build_barrier_dissemination(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const std::uint64_t token = p.count * p.type_size;
  for (int s = 1; s < n; s <<= 1) {
    Round round;
    for (int r = 0; r < n; ++r) {
      round.add(Round::copy(r, BufKind::Recv, 0, (r + s) % n, BufKind::Recv, 0, token));
    }
    sink.on_round(round);
  }
}

void build_barrier_recursive_doubling(const CollParams& p, RoundSink& sink) {
  const int n = p.nranks;
  if (n == 1) {
    return;
  }
  const std::uint64_t token = p.count * p.type_size;
  const int pof2 = static_cast<int>(util::floor_power_of_two(static_cast<std::uint64_t>(n)));
  const int rem = n - pof2;
  auto actual_of_new = [&](int v) { return v < rem ? 2 * v : v + rem; };
  // Fold: extras signal their partner (the partner must not proceed before
  // the extra arrived).
  if (rem > 0) {
    Round fold;
    for (int r = 1; r < 2 * rem; r += 2) {
      fold.add(Round::copy(r, BufKind::Recv, 0, r - 1, BufKind::Recv, 0, token));
    }
    sink.on_round(fold);
  }
  for (int mask = 1; mask < pof2; mask <<= 1) {
    Round round;
    for (int v = 0; v < pof2; ++v) {
      const int partner = v ^ mask;
      if (v < partner) {
        round.add(Round::copy(actual_of_new(v), BufKind::Recv, 0, actual_of_new(partner),
                              BufKind::Recv, 0, token));
        round.add(Round::copy(actual_of_new(partner), BufKind::Recv, 0, actual_of_new(v),
                              BufKind::Recv, 0, token));
      }
    }
    sink.on_round(round);
  }
  // Unfold: partners release the extras.
  if (rem > 0) {
    Round unfold;
    for (int r = 1; r < 2 * rem; r += 2) {
      unfold.add(Round::copy(r - 1, BufKind::Recv, 0, r, BufKind::Recv, 0, token));
    }
    sink.on_round(unfold);
  }
}

}  // namespace acclaim::coll::detail

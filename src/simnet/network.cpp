#include "simnet/network.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace acclaim::simnet {

NetworkModel::NetworkModel(const Topology& topo, std::uint64_t job_seed) : topo_(topo) {
  util::Rng rng(job_seed);
  const NetworkParams& p = topo.machine().net;
  // Clamp the multiplier so pathological draws cannot dominate experiments;
  // the paper reports "over 2x" spread, which a clamp at 2.5 preserves.
  lat_mult_ = std::clamp(rng.lognormal_median(1.0, p.job_latency_sigma), 0.7, 2.5);
  bg_global_ = std::max(1.0, rng.lognormal_median(1.0, p.background_congestion_sigma));
  // One network realization per job: export the draw so metrics snapshots
  // identify how (un)lucky this allocation's network was (§II-B2 spread).
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.counter("simnet.networks_realized").add();
  reg.gauge("simnet.job_latency_mult").set(lat_mult_);
  reg.gauge("simnet.background_global_factor").set(bg_global_);
  // Freeze the job-effective link parameters now: after the constructor the
  // model is immutable, which is what lets a whole parallel batch of
  // simulated microbenchmarks share it without synchronization.
  for (int i = 0; i < kNumLinkClasses; ++i) {
    const auto c = static_cast<LinkClass>(i);
    alpha_eff_us_[static_cast<std::size_t>(i)] = p.alpha_us[static_cast<std::size_t>(i)] * lat_mult_;
    double beta = 1.0 / p.bandwidth_Bpus[static_cast<std::size_t>(i)];
    if (c == LinkClass::Global) {
      beta *= bg_global_;
    }
    beta_eff_us_per_byte_[static_cast<std::size_t>(i)] = beta;
  }
}

double NetworkModel::alpha_us(LinkClass c) const {
  return alpha_eff_us_[static_cast<std::size_t>(c)];
}

double NetworkModel::beta_us_per_byte(LinkClass c) const {
  return beta_eff_us_per_byte_[static_cast<std::size_t>(c)];
}

double NetworkModel::transfer_time_us(int src_node, int dst_node, std::uint64_t bytes) const {
  const LinkClass c = topo_.link_class(src_node, dst_node);
  static telemetry::Counter& transfers = telemetry::metrics().counter("simnet.transfers");
  transfers.add();
  const auto i = static_cast<std::size_t>(c);
  return alpha_eff_us_[i] + static_cast<double>(bytes) * beta_eff_us_per_byte_[i];
}

}  // namespace acclaim::simnet

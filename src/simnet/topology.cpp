#include "simnet/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acclaim::simnet {

Topology::Topology(MachineConfig config) : config_(std::move(config)) {
  config_.validate();
  num_racks_ = config_.num_racks();
  num_pairs_ = config_.num_pairs();
  record_machine_metrics(config_);
}

void Topology::check_node(int node) const {
  if (node < 0 || node >= config_.total_nodes) {
    throw InvalidArgument("node id " + std::to_string(node) + " out of range [0, " +
                          std::to_string(config_.total_nodes) + ")");
  }
}

int Topology::rack_of(int node) const {
  check_node(node);
  return node / config_.nodes_per_rack;
}

int Topology::pair_of_rack(int rack) const {
  if (rack < 0 || rack >= num_racks_) {
    throw InvalidArgument("rack id out of range");
  }
  return rack / config_.racks_per_pair;
}

int Topology::pair_of(int node) const { return pair_of_rack(rack_of(node)); }

int Topology::rack_first_node(int rack) const {
  require(rack >= 0 && rack < num_racks_, "rack id out of range");
  return rack * config_.nodes_per_rack;
}

int Topology::rack_size(int rack) const {
  require(rack >= 0 && rack < num_racks_, "rack id out of range");
  return std::min(config_.nodes_per_rack, config_.total_nodes - rack_first_node(rack));
}

LinkClass Topology::link_class(int node_a, int node_b) const {
  check_node(node_a);
  check_node(node_b);
  if (node_a == node_b) {
    return LinkClass::IntraNode;
  }
  const int rack_a = node_a / config_.nodes_per_rack;
  const int rack_b = node_b / config_.nodes_per_rack;
  if (rack_a == rack_b) {
    return LinkClass::IntraRack;
  }
  if (pair_of_rack(rack_a) == pair_of_rack(rack_b)) {
    return LinkClass::IntraPair;
  }
  return LinkClass::Global;
}

}  // namespace acclaim::simnet

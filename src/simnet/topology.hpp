// Dragonfly-style topology queries (paper Fig. 8).
#pragma once

#include "simnet/machine.hpp"

namespace acclaim::simnet {

/// Maps global node ids to racks and rack pairs and classifies node-to-node
/// links. Nodes are numbered sequentially within a rack and across racks,
/// exactly as the paper's Fig. 8 describes.
class Topology {
 public:
  explicit Topology(MachineConfig config);

  const MachineConfig& machine() const noexcept { return config_; }
  int total_nodes() const noexcept { return config_.total_nodes; }
  int num_racks() const noexcept { return num_racks_; }
  int num_pairs() const noexcept { return num_pairs_; }

  /// Rack index of a node. Node ids must be in [0, total_nodes).
  int rack_of(int node) const;

  /// Rack-pair index of a node.
  int pair_of(int node) const;

  /// Rack-pair index of a rack.
  int pair_of_rack(int rack) const;

  /// First node id in a rack.
  int rack_first_node(int rack) const;

  /// Number of nodes in a rack (the last rack may be partial).
  int rack_size(int rack) const;

  /// Distance class between two nodes (same node -> IntraNode).
  LinkClass link_class(int node_a, int node_b) const;

 private:
  void check_node(int node) const;

  MachineConfig config_;
  int num_racks_;
  int num_pairs_;
};

}  // namespace acclaim::simnet

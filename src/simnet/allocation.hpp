// Job node allocations and the best-effort scheduler.
//
// Theta's scheduler provides no guarantee that a job's nodes are near each
// other (§II-B2); an allocation's spread across racks and pairs is the main
// driver of per-job network variability. The JobScheduler emulates a busy
// machine: a random fraction of nodes is occupied and a job receives the
// lowest-numbered free nodes, which yields realistic fragmentation.
#pragma once

#include <set>
#include <vector>

#include "simnet/topology.hpp"
#include "util/rng.hpp"

namespace acclaim::simnet {

/// The racks and rack pairs a node region touches. The parallel-collection
/// environment intersects footprints to decide which co-running benchmarks
/// interfere; the scheduler's disjointness guarantee is exactly "no two
/// batch items' footprints share a rack".
struct RegionFootprint {
  std::set<int> racks;
  std::set<int> pairs;

  bool shares_rack_with(const RegionFootprint& other) const;
  bool shares_pair_with(const RegionFootprint& other) const;
};

/// An ordered set of node ids granted to a job. Ranks are block-mapped onto
/// the allocation: rank r runs on nodes[r / ppn].
class Allocation {
 public:
  Allocation() = default;
  explicit Allocation(std::vector<int> nodes);

  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  const std::vector<int>& nodes() const noexcept { return nodes_; }
  int node(int index) const;

  /// Node hosting rank `rank` when running `ppn` ranks per node.
  /// Requires 0 <= rank < num_nodes()*ppn.
  int node_of_rank(int rank, int ppn) const;

  /// Number of distinct racks / pairs this allocation touches.
  int racks_touched(const Topology& topo) const;
  int pairs_touched(const Topology& topo) const;

  /// Sub-allocation using nodes [first, first+count).
  Allocation slice(int first, int count) const;

  /// Racks/pairs touched by the node region [first, first+count). Pure and
  /// thread-safe: concurrent footprint queries over one allocation are the
  /// parallel batch path's bread and butter.
  RegionFootprint footprint(const Topology& topo, int first, int count) const;

 private:
  std::vector<int> nodes_;  // strictly increasing node ids
};

/// Allocates nodes from a machine for jobs.
class JobScheduler {
 public:
  /// `busy_fraction` of nodes are pre-occupied by other users' jobs
  /// (clustered in contiguous runs, like real schedulers leave the machine).
  JobScheduler(const Topology& topo, double busy_fraction, util::Rng rng);

  /// Best-effort allocation: the `n_nodes` lowest-numbered free nodes.
  /// Throws InvalidArgument if fewer than n_nodes are free.
  Allocation allocate(int n_nodes);

  /// Contiguous allocation starting at node `first` (for controlled
  /// experiments such as the Fig. 13 placement topologies). Ignores
  /// occupancy. Throws if out of range.
  Allocation allocate_contiguous(int first, int n_nodes) const;

  /// Nodes currently free.
  int free_nodes() const;

  /// Release a previous allocation's nodes.
  void release(const Allocation& alloc);

 private:
  const Topology& topo_;
  std::vector<bool> busy_;
  util::Rng rng_;
};

/// Builds the four placement topologies evaluated in Fig. 13 for a machine
/// with >= 4 rack pairs: "single-rack", "single-pair", "two-pairs", and
/// "max-parallel" (one node per rack, all racks in distinct pairs).
Allocation fig13_placement(const Topology& topo, const std::string& kind, int n_nodes);

}  // namespace acclaim::simnet

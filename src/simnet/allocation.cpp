#include "simnet/allocation.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "util/error.hpp"

namespace acclaim::simnet {

Allocation::Allocation(std::vector<int> nodes) : nodes_(std::move(nodes)) {
  require(!nodes_.empty(), "allocation must contain at least one node");
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    require(nodes_[i] > nodes_[i - 1], "allocation node ids must be strictly increasing");
  }
}

int Allocation::node(int index) const {
  require(index >= 0 && index < num_nodes(), "allocation node index out of range");
  return nodes_[static_cast<std::size_t>(index)];
}

int Allocation::node_of_rank(int rank, int ppn) const {
  require(ppn >= 1, "ppn must be >= 1");
  require(rank >= 0 && rank < num_nodes() * ppn, "rank out of range for allocation");
  return nodes_[static_cast<std::size_t>(rank / ppn)];
}

int Allocation::racks_touched(const Topology& topo) const {
  std::set<int> racks;
  for (int n : nodes_) {
    racks.insert(topo.rack_of(n));
  }
  return static_cast<int>(racks.size());
}

int Allocation::pairs_touched(const Topology& topo) const {
  std::set<int> pairs;
  for (int n : nodes_) {
    pairs.insert(topo.pair_of(n));
  }
  return static_cast<int>(pairs.size());
}

Allocation Allocation::slice(int first, int count) const {
  require(first >= 0 && count >= 1 && first + count <= num_nodes(),
          "allocation slice out of range");
  return Allocation(std::vector<int>(nodes_.begin() + first, nodes_.begin() + first + count));
}

bool RegionFootprint::shares_rack_with(const RegionFootprint& other) const {
  for (int r : racks) {
    if (other.racks.count(r)) {
      return true;
    }
  }
  return false;
}

bool RegionFootprint::shares_pair_with(const RegionFootprint& other) const {
  for (int p : pairs) {
    if (other.pairs.count(p)) {
      return true;
    }
  }
  return false;
}

RegionFootprint Allocation::footprint(const Topology& topo, int first, int count) const {
  require(first >= 0 && count >= 1 && first + count <= num_nodes(),
          "allocation footprint region out of range");
  RegionFootprint fp;
  for (int k = 0; k < count; ++k) {
    const int n = nodes_[static_cast<std::size_t>(first + k)];
    fp.racks.insert(topo.rack_of(n));
    fp.pairs.insert(topo.pair_of(n));
  }
  return fp;
}

JobScheduler::JobScheduler(const Topology& topo, double busy_fraction, util::Rng rng)
    : topo_(topo), busy_(static_cast<std::size_t>(topo.total_nodes()), false), rng_(rng) {
  require(busy_fraction >= 0.0 && busy_fraction < 1.0, "busy_fraction must be in [0, 1)");
  // Occupy contiguous runs of random length until the target fraction is
  // reached; this produces the fragmented free list a production machine has.
  const int target = static_cast<int>(busy_fraction * topo.total_nodes());
  int occupied = 0;
  int guard = 0;
  while (occupied < target && guard++ < 100000) {
    const int run = static_cast<int>(rng_.uniform_int(1, std::max<std::int64_t>(
                                                             1, topo.total_nodes() / 32)));
    const int start = static_cast<int>(rng_.uniform_int(0, topo.total_nodes() - 1));
    for (int i = start; i < std::min(start + run, topo.total_nodes()) && occupied < target; ++i) {
      if (!busy_[static_cast<std::size_t>(i)]) {
        busy_[static_cast<std::size_t>(i)] = true;
        ++occupied;
      }
    }
  }
}

Allocation JobScheduler::allocate(int n_nodes) {
  require(n_nodes >= 1, "allocation size must be >= 1");
  std::vector<int> nodes;
  nodes.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < topo_.total_nodes() && static_cast<int>(nodes.size()) < n_nodes; ++i) {
    if (!busy_[static_cast<std::size_t>(i)]) {
      nodes.push_back(i);
    }
  }
  require(static_cast<int>(nodes.size()) == n_nodes,
          "not enough free nodes for allocation of " + std::to_string(n_nodes));
  for (int n : nodes) {
    busy_[static_cast<std::size_t>(n)] = true;
  }
  return Allocation(std::move(nodes));
}

Allocation JobScheduler::allocate_contiguous(int first, int n_nodes) const {
  require(first >= 0 && n_nodes >= 1 && first + n_nodes <= topo_.total_nodes(),
          "contiguous allocation out of machine range");
  std::vector<int> nodes(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    nodes[static_cast<std::size_t>(i)] = first + i;
  }
  return Allocation(std::move(nodes));
}

int JobScheduler::free_nodes() const {
  int free = 0;
  for (bool b : busy_) {
    if (!b) {
      ++free;
    }
  }
  return free;
}

void JobScheduler::release(const Allocation& alloc) {
  for (int n : alloc.nodes()) {
    require(n >= 0 && n < topo_.total_nodes(), "release: node out of range");
    busy_[static_cast<std::size_t>(n)] = false;
  }
}

Allocation fig13_placement(const Topology& topo, const std::string& kind, int n_nodes) {
  const int npr = topo.machine().nodes_per_rack;
  const int rpp = topo.machine().racks_per_pair;
  std::vector<int> nodes;
  nodes.reserve(static_cast<std::size_t>(n_nodes));
  if (kind == "single-rack") {
    require(n_nodes <= npr, "single-rack placement needs n_nodes <= nodes_per_rack");
    for (int i = 0; i < n_nodes; ++i) {
      nodes.push_back(i);
    }
  } else if (kind == "single-pair") {
    // Spread evenly over the racks of the first pair.
    require(n_nodes <= npr * rpp, "single-pair placement too large");
    const int per_rack = (n_nodes + rpp - 1) / rpp;
    int remaining = n_nodes;
    for (int r = 0; r < rpp && remaining > 0; ++r) {
      const int take = std::min(per_rack, remaining);
      for (int i = 0; i < take; ++i) {
        nodes.push_back(r * npr + i);
      }
      remaining -= take;
    }
  } else if (kind == "two-pairs") {
    // Spread evenly over the four racks of the first two pairs.
    const int racks = 2 * rpp;
    require(n_nodes <= npr * racks, "two-pairs placement too large");
    const int per_rack = (n_nodes + racks - 1) / racks;
    int remaining = n_nodes;
    for (int r = 0; r < racks && remaining > 0; ++r) {
      const int take = std::min(per_rack, remaining);
      for (int i = 0; i < take; ++i) {
        nodes.push_back(r * npr + i);
      }
      remaining -= take;
    }
  } else if (kind == "max-parallel") {
    // One node per rack, racks chosen from distinct pairs where possible:
    // rack stride of racks_per_pair guarantees distinct pairs.
    require(n_nodes <= topo.num_pairs(), "max-parallel placement needs n_nodes <= num_pairs");
    for (int i = 0; i < n_nodes; ++i) {
      nodes.push_back(i * rpp * npr);
    }
  } else {
    throw InvalidArgument("unknown Fig. 13 placement kind '" + kind + "'");
  }
  std::sort(nodes.begin(), nodes.end());
  return Allocation(std::move(nodes));
}

}  // namespace acclaim::simnet

// Per-job network performance model.
//
// Transfer cost follows the postal/LogGP family: alpha + bytes/bandwidth,
// where alpha and bandwidth depend on the link class (intra-node, intra-rack,
// intra-pair, global). Two job-level effects reproduce the paper's observed
// non-programmatic variability (§II-B2/§II-B3):
//  * a per-job latency multiplier (lognormal; >2x spread between allocations
//    was measured on Theta), and
//  * background congestion on the global layer from co-running applications.
#pragma once

#include <array>
#include <cstdint>

#include "simnet/topology.hpp"
#include "util/rng.hpp"

namespace acclaim::simnet {

/// Immutable per-job view of the interconnect. All queries are const and
/// touch only state frozen at construction, so one NetworkModel is safely
/// shared by every concurrently-running simulated microbenchmark of a job
/// (the parallel-collection path runs a whole batch against it at once).
class NetworkModel {
 public:
  /// `job_seed` determines this job's latency multiplier and congestion
  /// level; two jobs with different seeds see a different network, exactly
  /// like two allocations on Theta do.
  NetworkModel(const Topology& topo, std::uint64_t job_seed);

  const Topology& topology() const noexcept { return topo_; }

  /// Effective latency in microseconds for one message on a link class.
  double alpha_us(LinkClass c) const;

  /// Effective per-byte time (inverse bandwidth) in us/byte.
  double beta_us_per_byte(LinkClass c) const;

  /// Uncongested time for a single transfer of `bytes` between two nodes.
  double transfer_time_us(int src_node, int dst_node, std::uint64_t bytes) const;

  /// This job's latency multiplier (1.0 = nominal network).
  double job_latency_multiplier() const noexcept { return lat_mult_; }

  /// This job's background multiplier on global-layer bandwidth terms
  /// (>= 1.0; production neighbors steal layer-3 bandwidth).
  double background_global_factor() const noexcept { return bg_global_; }

  const NetworkParams& params() const noexcept { return topo_.machine().net; }

 private:
  const Topology& topo_;
  double lat_mult_;
  double bg_global_;
  /// Effective alpha/beta per link class, folded once at construction so the
  /// per-transfer hot path (millions of calls per batch) is two array loads
  /// and an FMA instead of re-applying the job multipliers every time.
  std::array<double, kNumLinkClasses> alpha_eff_us_{};
  std::array<double, kNumLinkClasses> beta_eff_us_per_byte_{};
};

}  // namespace acclaim::simnet

#include "simnet/machine.hpp"

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace acclaim::simnet {

const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::IntraNode: return "intra-node";
    case LinkClass::IntraRack: return "intra-rack";
    case LinkClass::IntraPair: return "intra-pair";
    case LinkClass::Global: return "global";
  }
  return "?";
}

int MachineConfig::num_racks() const {
  return (total_nodes + nodes_per_rack - 1) / nodes_per_rack;
}

int MachineConfig::num_pairs() const {
  return (num_racks() + racks_per_pair - 1) / racks_per_pair;
}

void MachineConfig::validate() const {
  require(total_nodes >= 1, "machine must have at least one node");
  require(nodes_per_rack >= 1, "rack must hold at least one node");
  require(racks_per_pair >= 1, "pair must hold at least one rack");
  require(cores_per_node >= 1, "node must have at least one core");
  for (double a : net.alpha_us) {
    require(a >= 0.0, "link latency must be non-negative");
  }
  for (double b : net.bandwidth_Bpus) {
    require(b > 0.0, "link bandwidth must be positive");
  }
  require(net.rack_uplink_capacity >= 1, "rack uplink capacity must be >= 1");
  require(net.global_link_capacity >= 1, "global link capacity must be >= 1");
  require(net.contention_cap >= 1.0, "contention cap must be >= 1");
  require(net.unaligned_beta_penalty >= 0.0, "unaligned penalty must be non-negative");
  require(net.rendezvous_alpha_factor >= 1.0, "rendezvous factor must be >= 1");
  require(net.chunk_bytes >= 1, "chunk size must be positive");
  require(net.chunk_overhead_us >= 0.0, "chunk overhead must be non-negative");
}

MachineConfig bebop_like() {
  MachineConfig m;
  m.name = "bebop-like";
  m.total_nodes = 64;
  m.nodes_per_rack = 16;
  m.racks_per_pair = 2;
  m.cores_per_node = 32;
  // Broadwell + Omni-Path-class fabric: slightly lower latency, higher
  // per-node bandwidth than the KNL machine.
  m.net.alpha_us = {0.25, 0.9, 1.4, 2.0};
  m.net.bandwidth_Bpus = {14000.0, 9000.0, 7000.0, 5500.0};
  m.validate();
  return m;
}

MachineConfig theta_like() {
  MachineConfig m;
  m.name = "theta-like";
  m.total_nodes = 4392;
  m.nodes_per_rack = 64;
  m.racks_per_pair = 2;
  m.cores_per_node = 64;
  // KNL cores are slow; per-byte reduce cost is higher, latencies a bit
  // higher, Aries global layer well provisioned.
  m.net.alpha_us = {0.5, 1.2, 1.9, 2.6};
  m.net.bandwidth_Bpus = {10000.0, 8500.0, 7000.0, 6000.0};
  m.net.reduce_compute_us_per_byte = 2.0e-4;
  m.net.job_latency_sigma = 0.30;
  m.validate();
  return m;
}

MachineConfig fat_tree_like() {
  MachineConfig m;
  m.name = "fat-tree-like";
  m.total_nodes = 1024;
  m.nodes_per_rack = 32;   // nodes per leaf switch
  m.racks_per_pair = 4;    // leaf switches per aggregation pod
  m.cores_per_node = 32;
  // InfiniBand-class: low, uniform latency; near-full bisection means the
  // upper layers rarely serialize.
  m.net.alpha_us = {0.25, 1.0, 1.3, 1.7};
  m.net.bandwidth_Bpus = {14000.0, 12000.0, 11000.0, 10000.0};
  m.net.rack_uplink_capacity = 16;   // ~half the leaf's downlinks go up
  m.net.global_link_capacity = 32;
  m.net.job_latency_sigma = 0.15;    // uniform paths: less per-job spread
  m.validate();
  return m;
}

void record_machine_metrics(const MachineConfig& config) {
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.gauge("simnet.machine.total_nodes").set(config.total_nodes);
  reg.gauge("simnet.machine.racks").set(config.num_racks());
  reg.gauge("simnet.machine.cores_per_node").set(config.cores_per_node);
  reg.counter("simnet.topologies_realized").add();
}

int max_rack_disjoint_benchmarks(const MachineConfig& config, int bench_nodes) {
  require(bench_nodes >= 1, "benchmark must use at least one node");
  if (bench_nodes > config.total_nodes) {
    return 0;
  }
  const int racks_per_bench =
      (bench_nodes + config.nodes_per_rack - 1) / config.nodes_per_rack;
  return config.num_racks() / racks_per_bench;
}

MachineConfig tiny_test_machine() {
  MachineConfig m;
  m.name = "tiny-test";
  m.total_nodes = 8;
  m.nodes_per_rack = 2;
  m.racks_per_pair = 2;
  m.cores_per_node = 4;
  m.net.job_latency_sigma = 0.0;
  m.net.background_congestion_sigma = 0.0;
  m.validate();
  return m;
}

}  // namespace acclaim::simnet

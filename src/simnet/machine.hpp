// Machine descriptions for the simulated HPC systems.
//
// The paper evaluates on two machines:
//  * a Bebop-like cluster (64 nodes, Xeon E5-2695v4, 36 cores of which the
//    dataset uses up to 32) for the precollected simulated experiments, and
//  * Theta (4,392 nodes, KNL 64 cores, Aries Dragonfly) for production runs.
// We model both as Dragonfly-style machines: nodes grouped into racks
// (layer 1), racks paired (layer 2), pairs connected by a global layer
// (layer 3) — the simplified topology of the paper's Fig. 8.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace acclaim::simnet {

/// The four communication distance classes in the simplified Dragonfly.
enum class LinkClass : int {
  IntraNode = 0,  ///< both ranks on the same node (shared memory)
  IntraRack = 1,  ///< same rack, layer-1 links
  IntraPair = 2,  ///< paired racks, layer-2 links
  Global = 3,     ///< across rack pairs, layer-3 links
};

constexpr int kNumLinkClasses = 4;

const char* link_class_name(LinkClass c);

/// Latency/bandwidth parameters of the interconnect plus the knobs that make
/// jobs on a busy production machine differ from one another.
struct NetworkParams {
  /// Per-class base latency (alpha) in microseconds.
  std::array<double, kNumLinkClasses> alpha_us{0.3, 1.0, 1.6, 2.3};
  /// Per-class bandwidth in bytes per microsecond (1 GB/s ~ 1000 B/us).
  std::array<double, kNumLinkClasses> bandwidth_Bpus{12000.0, 8000.0, 6000.0, 4500.0};
  /// Log-stddev of the per-job latency multiplier. The paper reports >2x
  /// latency differences between allocations of the same job size (§II-B2).
  double job_latency_sigma = 0.25;
  /// Multiplicative noise on the global layer from co-running applications.
  double background_congestion_sigma = 0.10;
  /// Per-communication-round synchronization overhead in microseconds.
  double round_overhead_us = 0.4;
  /// Cost of reducing one byte on the CPU (us/byte); charged on reduce
  /// transfers at the destination.
  double reduce_compute_us_per_byte = 1.2e-4;
  /// Cost of a local (same-rank) buffer copy (us/byte).
  double local_copy_us_per_byte = 2.5e-5;
  /// Concurrent full-bandwidth flows a rack uplink sustains before
  /// serializing (layer-2 capacity).
  int rack_uplink_capacity = 4;
  /// Concurrent full-bandwidth flows the global layer sustains per pair.
  int global_link_capacity = 8;
  /// Upper bound on any contention multiplier: adaptive routing (Aries
  /// spreads flows over minimal and non-minimal paths) bounds worst-case
  /// serialization even under heavy incast.
  double contention_cap = 8.0;
  /// Extra per-byte cost multiplier for transfers whose size or offsets are
  /// not 8-byte aligned: unaligned copies and packetization fall off the
  /// fast path. This is what makes non-power-of-two message sizes behave
  /// differently *per algorithm* (scatter-based schedules produce ragged,
  /// misaligned blocks; full-vector schedules do not) — the §III-B effect.
  double unaligned_beta_penalty = 0.25;
  /// Eager/rendezvous protocol switch: transfers larger than this pay the
  /// handshake (alpha multiplied by rendezvous_alpha_factor). Each
  /// algorithm's *per-transfer* size crosses this boundary at a different
  /// total message size (full-vector at eager_threshold, an n-way scatter
  /// at n*eager_threshold), so algorithm rankings genuinely flip between
  /// power-of-two grid anchors — the non-P2 trend a P2-trained model cannot
  /// interpolate (§III-B, Fig. 5).
  std::uint64_t eager_threshold_bytes = 8192;
  double rendezvous_alpha_factor = 3.0;
  /// NIC segmentation: transfers are cut into chunks; every chunk beyond
  /// the first pays a per-chunk processing overhead, giving latency curves
  /// their real sawtooth between P2 sizes.
  std::uint64_t chunk_bytes = 16384;
  double chunk_overhead_us = 1.5;
};

/// Static description of a machine.
struct MachineConfig {
  std::string name;
  int total_nodes = 64;
  int nodes_per_rack = 16;
  int racks_per_pair = 2;
  int cores_per_node = 32;
  NetworkParams net;

  int num_racks() const;
  int num_pairs() const;

  /// Validates invariants (positive sizes, at least one rack); throws
  /// InvalidArgument on violation.
  void validate() const;
};

/// 64-node Bebop-like cluster used for the precollected dataset experiments.
MachineConfig bebop_like();

/// Theta-like leadership machine (4,392 nodes, 64 hardware threads/node).
MachineConfig theta_like();

/// Three-level fat-tree cluster (the paper's §IV-D notes non-Dragonfly
/// machines need methodology tweaks; a fat tree maps onto the same
/// hierarchy — leaf switch = "rack", aggregation pod = "pair", core =
/// global — with near-full-bisection capacities, so the topology-aware
/// collection scheduler works unchanged and simply finds more parallelism).
MachineConfig fat_tree_like();

/// Small machine for unit tests (fast, deterministic).
MachineConfig tiny_test_machine();

/// Publishes the machine's shape (nodes, racks, cores) as telemetry gauges
/// under "simnet.machine.*" — called when a Topology is realized so metrics
/// exports identify the machine a run executed on.
void record_machine_metrics(const MachineConfig& config);

/// Upper bound on how many `bench_nodes`-node benchmarks can ever run
/// rack-disjointly at once on this machine: whole-rack retirement means one
/// benchmark consumes ceil(bench_nodes / nodes_per_rack) racks even when it
/// uses a single node of each. This is the ceiling the §IV-D greedy can
/// reach under the best possible placement ("max-parallel" in Fig. 13);
/// batch-occupancy telemetry is read against it.
int max_rack_disjoint_benchmarks(const MachineConfig& config, int bench_nodes);

}  // namespace acclaim::simnet

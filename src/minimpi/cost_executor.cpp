#include "minimpi/cost_executor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acclaim::minimpi {

RankMap::RankMap(const simnet::Allocation& alloc, int ppn) : ppn_(ppn) {
  require(ppn >= 1, "RankMap requires ppn >= 1");
  nranks_ = alloc.num_nodes() * ppn;
  node_of_rank_.resize(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    node_of_rank_[static_cast<std::size_t>(r)] = alloc.node_of_rank(r, ppn);
  }
}

int RankMap::node_of(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw InvalidArgument("rank out of range in RankMap");
  }
  return node_of_rank_[static_cast<std::size_t>(rank)];
}

CostExecutor::CostExecutor(const simnet::NetworkModel& net, const RankMap& ranks)
    : net_(net),
      ranks_(ranks),
      node_out_(static_cast<std::size_t>(net.topology().total_nodes())),
      node_in_(static_cast<std::size_t>(net.topology().total_nodes())),
      rack_flows_(static_cast<std::size_t>(net.topology().num_racks())),
      pair_flows_(static_cast<std::size_t>(net.topology().num_pairs())) {}

void CostExecutor::set_external_load(const FlowMap& rack_flows, const FlowMap& pair_flows) {
  ext_rack_flows_ = rack_flows;
  ext_pair_flows_ = pair_flows;
}

void CostExecutor::on_round(const Round& round) {
  validate_round(round, ranks_.nranks());
  const auto& topo = net_.topology();
  const auto& p = net_.params();

  // Pass 1: count concurrent flows per choke point (NIC in/out, rack
  // uplinks, global pair links).
  node_out_.reset();
  node_in_.reset();
  rack_flows_.reset();
  pair_flows_.reset();
  for (const Transfer& t : round.transfers) {
    if (t.src_rank == t.dst_rank) {
      continue;  // local copy, no network
    }
    const int sn = ranks_.node_of(t.src_rank);
    const int dn = ranks_.node_of(t.dst_rank);
    if (sn == dn) {
      continue;  // shared-memory transfer, not a NIC flow
    }
    node_out_.add(sn, 1);
    node_in_.add(dn, 1);
    const int sr = topo.rack_of(sn);
    const int dr = topo.rack_of(dn);
    if (sr != dr) {
      rack_flows_.add(sr, 1);
      rack_flows_.add(dr, 1);
      const int sp = topo.pair_of_rack(sr);
      const int dp = topo.pair_of_rack(dr);
      if (sp != dp) {
        pair_flows_.add(sp, 1);
        pair_flows_.add(dp, 1);
      }
    }
  }
  for (const auto& [rack, flows] : ext_rack_flows_) {
    rack_flows_.add(rack, flows);
  }
  for (const auto& [pair, flows] : ext_pair_flows_) {
    pair_flows_.add(pair, flows);
  }

  // Pass 2: per-transfer effective time; round time = max over transfers.
  double round_us = 0.0;
  for (const Transfer& t : round.transfers) {
    double us = 0.0;
    if (t.src_rank == t.dst_rank) {
      us = static_cast<double>(t.bytes) * p.local_copy_us_per_byte;
    } else {
      const int sn = ranks_.node_of(t.src_rank);
      const int dn = ranks_.node_of(t.dst_rank);
      const simnet::LinkClass cls = topo.link_class(sn, dn);
      double contention = 1.0;
      if (cls != simnet::LinkClass::IntraNode) {
        contention = std::max(
            contention, static_cast<double>(std::max(node_out_.get(sn), node_in_.get(dn))));
        const int sr = topo.rack_of(sn);
        const int dr = topo.rack_of(dn);
        if (sr == dr) {
          // Intra-rack transfer: co-running benchmarks that share this rack
          // congest the layer-1 switch (§III-D — the reason the collection
          // scheduler forbids rack sharing).
          if (!ext_rack_flows_.empty()) {
            const auto it = ext_rack_flows_.find(sr);
            if (it != ext_rack_flows_.end()) {
              contention = std::max(contention, 1.0 + static_cast<double>(it->second) /
                                                          static_cast<double>(
                                                              p.rack_uplink_capacity));
            }
          }
        } else {
          const double uplink =
              static_cast<double>(std::max(rack_flows_.get(sr), rack_flows_.get(dr))) /
              static_cast<double>(p.rack_uplink_capacity);
          contention = std::max(contention, uplink);
          const int sp = topo.pair_of_rack(sr);
          const int dp = topo.pair_of_rack(dr);
          if (sp != dp) {
            const double global =
                static_cast<double>(std::max(pair_flows_.get(sp), pair_flows_.get(dp))) /
                static_cast<double>(p.global_link_capacity);
            contention = std::max(contention, global);
          }
        }
      }
      contention = std::min(contention, p.contention_cap);
      double beta = net_.beta_us_per_byte(cls);
      if (t.bytes % 8 != 0 || t.src_off % 8 != 0 || t.dst_off % 8 != 0) {
        beta *= 1.0 + p.unaligned_beta_penalty;
      }
      double alpha = net_.alpha_us(cls);
      if (t.bytes > p.eager_threshold_bytes) {
        alpha *= p.rendezvous_alpha_factor;  // rendezvous handshake
      }
      const std::uint64_t chunks = (t.bytes + p.chunk_bytes - 1) / p.chunk_bytes;
      us = alpha + static_cast<double>(chunks - 1) * p.chunk_overhead_us +
           static_cast<double>(t.bytes) * beta * contention;
    }
    if (t.reduce) {
      us += static_cast<double>(t.bytes) * p.reduce_compute_us_per_byte;
    }
    round_us = std::max(round_us, us);
  }
  elapsed_us_ += round_us + p.round_overhead_us;
  ++rounds_;
}

}  // namespace acclaim::minimpi

#include "minimpi/ops.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace acclaim::minimpi {

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Max: return "max";
    case ReduceOp::Min: return "min";
    case ReduceOp::Prod: return "prod";
  }
  return "?";
}

double reduce_scalar(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::Sum: return a + b;
    case ReduceOp::Max: return std::max(a, b);
    case ReduceOp::Min: return std::min(a, b);
    case ReduceOp::Prod: return a * b;
  }
  throw InvalidArgument("unknown reduce op");
}

double reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return 0.0;
    case ReduceOp::Max: return -std::numeric_limits<double>::infinity();
    case ReduceOp::Min: return std::numeric_limits<double>::infinity();
    case ReduceOp::Prod: return 1.0;
  }
  throw InvalidArgument("unknown reduce op");
}

void apply_reduce(ReduceOp op, double* dst, const double* src, std::size_t count) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < count; ++i) dst[i] += src[i];
      return;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < count; ++i) dst[i] = std::max(dst[i], src[i]);
      return;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < count; ++i) dst[i] = std::min(dst[i], src[i]);
      return;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < count; ++i) dst[i] *= src[i];
      return;
  }
  throw InvalidArgument("unknown reduce op");
}

}  // namespace acclaim::minimpi

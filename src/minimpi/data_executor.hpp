// Byte-accurate schedule execution for correctness testing.
//
// Each simulated rank owns three double-element buffers (send, recv, tmp).
// Within a round all sources are read from the *pre-round* state — exactly
// the semantics of a set of concurrent MPI_Sendrecv calls — by staging every
// transfer's source bytes before applying any write.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/ops.hpp"
#include "minimpi/schedule.hpp"

namespace acclaim::minimpi {

/// Executes rounds against per-rank buffers.
class DataExecutor final : public RoundSink {
 public:
  /// Buffers are sized in *bytes* (must be multiples of 8) and zero-filled.
  DataExecutor(int nranks, std::uint64_t send_bytes, std::uint64_t recv_bytes,
               std::uint64_t tmp_bytes, ReduceOp op = ReduceOp::Sum);

  int nranks() const noexcept { return nranks_; }

  /// Mutable access for initializing inputs (element = double).
  std::vector<double>& buffer(int rank, BufKind kind);
  const std::vector<double>& buffer(int rank, BufKind kind) const;

  void on_round(const Round& round) override;

  std::size_t rounds_executed() const noexcept { return rounds_; }

 private:
  struct Staged {
    const Transfer* transfer;
    std::vector<double> data;
  };

  int nranks_;
  ReduceOp op_;
  // buffers_[rank][kind]
  std::vector<std::vector<std::vector<double>>> buffers_;
  std::size_t rounds_ = 0;
};

}  // namespace acclaim::minimpi

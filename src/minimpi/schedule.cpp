#include "minimpi/schedule.hpp"

#include <string>

#include "util/error.hpp"

namespace acclaim::minimpi {

const char* buf_kind_name(BufKind k) {
  switch (k) {
    case BufKind::Send: return "send";
    case BufKind::Recv: return "recv";
    case BufKind::Tmp: return "tmp";
  }
  return "?";
}

Transfer Round::copy(int src_rank, BufKind src_buf, std::uint64_t src_off, int dst_rank,
                     BufKind dst_buf, std::uint64_t dst_off, std::uint64_t bytes) {
  Transfer t;
  t.src_rank = src_rank;
  t.dst_rank = dst_rank;
  t.src_buf = src_buf;
  t.dst_buf = dst_buf;
  t.src_off = src_off;
  t.dst_off = dst_off;
  t.bytes = bytes;
  t.reduce = false;
  return t;
}

Transfer Round::combine(int src_rank, BufKind src_buf, std::uint64_t src_off, int dst_rank,
                        BufKind dst_buf, std::uint64_t dst_off, std::uint64_t bytes) {
  Transfer t = copy(src_rank, src_buf, src_off, dst_rank, dst_buf, dst_off, bytes);
  t.reduce = true;
  return t;
}

std::size_t RecordingSink::total_transfers() const noexcept {
  std::size_t n = 0;
  for (const Round& r : rounds_) {
    n += r.transfers.size();
  }
  return n;
}

std::uint64_t RecordingSink::network_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const Round& r : rounds_) {
    for (const Transfer& t : r.transfers) {
      if (t.src_rank != t.dst_rank) {
        b += t.bytes;
      }
    }
  }
  return b;
}

void validate_round(const Round& round, int nranks) {
  if (round.transfers.empty()) {
    throw InvalidArgument("builders must not emit empty rounds");
  }
  for (const Transfer& t : round.transfers) {
    // Hot path: only build diagnostic strings on failure.
    if (t.src_rank < 0 || t.src_rank >= nranks) {
      throw InvalidArgument("transfer src rank " + std::to_string(t.src_rank) +
                            " out of range");
    }
    if (t.dst_rank < 0 || t.dst_rank >= nranks) {
      throw InvalidArgument("transfer dst rank " + std::to_string(t.dst_rank) +
                            " out of range");
    }
    if (t.bytes == 0) {
      throw InvalidArgument("transfer must move at least one byte");
    }
  }
}

}  // namespace acclaim::minimpi

// Reduction operations over double elements.
//
// Correctness execution works on doubles (8-byte elements); a reduce
// transfer's byte range must therefore be 8-byte aligned and sized.
#pragma once

#include <cstddef>
#include <string>

namespace acclaim::minimpi {

enum class ReduceOp : int { Sum = 0, Max = 1, Min = 2, Prod = 3 };

const char* reduce_op_name(ReduceOp op);

/// dst[i] = op(dst[i], src[i]) for i in [0, count).
void apply_reduce(ReduceOp op, double* dst, const double* src, std::size_t count);

/// Scalar form for oracles.
double reduce_scalar(ReduceOp op, double a, double b);

/// Identity element of the op (0 for Sum, -inf for Max, ...).
double reduce_identity(ReduceOp op);

}  // namespace acclaim::minimpi

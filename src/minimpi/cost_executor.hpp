// Timing execution of a schedule against the network model.
//
// Round cost = max over its transfers of the per-transfer time, plus a
// synchronization overhead; total = sum over rounds. Per-transfer time is
// alpha(class) + bytes * beta(class) * contention, where contention captures
// serialization at three choke points:
//  * NIC: a node sending (or receiving) k concurrent messages serializes its
//    injection (ejection) bandwidth k-ways;
//  * rack uplink (layer 2): transfers leaving/entering a rack share
//    `rack_uplink_capacity` full-speed flows;
//  * global layer (layer 3): transfers between rack pairs share
//    `global_link_capacity` flows per pair.
// This is what makes co-scheduled benchmarks that share a rack perturb each
// other (§III-D) and what the Fig. 13 collection scheduler must avoid.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "minimpi/schedule.hpp"
#include "simnet/allocation.hpp"
#include "simnet/network.hpp"

namespace acclaim::minimpi {

/// Extra concurrent flows per rack uplink / per rack pair, keyed by rack (or
/// pair) id. Ordered so that every loop over external load visits entries in
/// a fixed order regardless of insertion history — these maps cross the
/// parallel-collection boundary and feed accumulated contention, where an
/// unordered container's bucket order would be a determinism hazard
/// (acclaim_lint check `det-unordered-iter`).
using FlowMap = std::map<int, int>;

/// Maps ranks to machine nodes (block mapping over an allocation).
class RankMap {
 public:
  RankMap(const simnet::Allocation& alloc, int ppn);

  int nranks() const noexcept { return nranks_; }
  int ppn() const noexcept { return ppn_; }
  int node_of(int rank) const;

 private:
  std::vector<int> node_of_rank_;
  int nranks_;
  int ppn_;
};

/// Accumulates the execution time of the rounds it receives.
class CostExecutor final : public RoundSink {
 public:
  CostExecutor(const simnet::NetworkModel& net, const RankMap& ranks);

  void on_round(const Round& round) override;

  /// Total schedule time so far, in microseconds.
  double elapsed_us() const noexcept { return elapsed_us_; }

  std::size_t rounds_executed() const noexcept { return rounds_; }

  /// Register transfers from a *different* co-running schedule that occupy
  /// the network concurrently (used to model congestion between co-scheduled
  /// benchmarks). Loads are expressed as extra concurrent flows per rack
  /// uplink / per pair.
  void set_external_load(const FlowMap& rack_flows, const FlowMap& pair_flows);

 private:
  /// Sparse per-round counter over a dense id space: O(1) increments and
  /// O(touched) reset, no hashing on the hot path.
  class FlowCounter {
   public:
    explicit FlowCounter(std::size_t size) : counts_(size, 0) {}
    void add(int id, int n) {
      if (counts_[static_cast<std::size_t>(id)] == 0) {
        touched_.push_back(id);
      }
      counts_[static_cast<std::size_t>(id)] += n;
    }
    int get(int id) const { return counts_[static_cast<std::size_t>(id)]; }
    void reset() {
      for (int id : touched_) {
        counts_[static_cast<std::size_t>(id)] = 0;
      }
      touched_.clear();
    }

   private:
    std::vector<int> counts_;
    std::vector<int> touched_;
  };

  const simnet::NetworkModel& net_;
  const RankMap& ranks_;
  double elapsed_us_ = 0.0;
  std::size_t rounds_ = 0;
  FlowMap ext_rack_flows_;
  FlowMap ext_pair_flows_;
  FlowCounter node_out_;
  FlowCounter node_in_;
  FlowCounter rack_flows_;
  FlowCounter pair_flows_;
};

}  // namespace acclaim::minimpi

#include "minimpi/data_executor.hpp"

#include <cstring>
#include <string>

#include "util/error.hpp"

namespace acclaim::minimpi {

namespace {
std::uint64_t to_elems(std::uint64_t bytes, const char* what) {
  require(bytes % 8 == 0, std::string(what) + " must be a multiple of 8 bytes");
  return bytes / 8;
}
}  // namespace

DataExecutor::DataExecutor(int nranks, std::uint64_t send_bytes, std::uint64_t recv_bytes,
                           std::uint64_t tmp_bytes, ReduceOp op)
    : nranks_(nranks), op_(op) {
  require(nranks >= 1, "DataExecutor requires at least one rank");
  const std::uint64_t se = to_elems(send_bytes, "send buffer size");
  const std::uint64_t re = to_elems(recv_bytes, "recv buffer size");
  const std::uint64_t te = to_elems(tmp_bytes, "tmp buffer size");
  buffers_.resize(static_cast<std::size_t>(nranks));
  for (auto& rank_bufs : buffers_) {
    rank_bufs.resize(3);
    rank_bufs[0].assign(se, 0.0);
    rank_bufs[1].assign(re, 0.0);
    rank_bufs[2].assign(te, 0.0);
  }
}

std::vector<double>& DataExecutor::buffer(int rank, BufKind kind) {
  require(rank >= 0 && rank < nranks_, "buffer rank out of range");
  return buffers_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(kind)];
}

const std::vector<double>& DataExecutor::buffer(int rank, BufKind kind) const {
  require(rank >= 0 && rank < nranks_, "buffer rank out of range");
  return buffers_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(kind)];
}

void DataExecutor::on_round(const Round& round) {
  validate_round(round, nranks_);
  // Stage all source regions first so the round has sendrecv semantics.
  std::vector<Staged> staged;
  staged.reserve(round.transfers.size());
  for (const Transfer& t : round.transfers) {
    // Data movement is element-granular in this executor.
    const std::uint64_t elems = to_elems(t.bytes, "transfer size");
    const std::uint64_t src_elem = to_elems(t.src_off, "transfer src offset");
    const auto& src = buffer(t.src_rank, t.src_buf);
    require(src_elem + elems <= src.size(),
            "transfer reads past end of " + std::string(buf_kind_name(t.src_buf)) +
                " buffer of rank " + std::to_string(t.src_rank));
    Staged s;
    s.transfer = &t;
    s.data.assign(src.begin() + static_cast<std::ptrdiff_t>(src_elem),
                  src.begin() + static_cast<std::ptrdiff_t>(src_elem + elems));
    staged.push_back(std::move(s));
  }
  for (const Staged& s : staged) {
    const Transfer& t = *s.transfer;
    const std::uint64_t elems = s.data.size();
    const std::uint64_t dst_elem = to_elems(t.dst_off, "transfer dst offset");
    auto& dst = buffer(t.dst_rank, t.dst_buf);
    require(dst_elem + elems <= dst.size(),
            "transfer writes past end of " + std::string(buf_kind_name(t.dst_buf)) +
                " buffer of rank " + std::to_string(t.dst_rank));
    if (t.reduce) {
      apply_reduce(op_, dst.data() + dst_elem, s.data.data(), elems);
    } else {
      std::memcpy(dst.data() + dst_elem, s.data.data(), elems * sizeof(double));
    }
  }
  ++rounds_;
}

}  // namespace acclaim::minimpi

// Round-based communication-schedule IR.
//
// Every collective algorithm is expressed as a sequence of *rounds*; a round
// is a set of point-to-point transfers that proceed concurrently, and rounds
// are globally ordered (the LogP-style level-synchronous view under which
// these algorithms are normally analyzed). A schedule builder emits rounds
// into a RoundSink, so the same builder drives both
//  * the DataExecutor (byte-accurate buffer movement, for correctness), and
//  * the CostExecutor (timing against a NetworkModel, for benchmarks),
// without materializing multi-gigabyte schedules for large rank counts.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/ops.hpp"

namespace acclaim::minimpi {

/// Which of a rank's three buffers a transfer touches.
enum class BufKind : int { Send = 0, Recv = 1, Tmp = 2 };

const char* buf_kind_name(BufKind k);

/// One point-to-point data movement. src_rank == dst_rank denotes a local
/// copy (no network involvement, only memory bandwidth).
struct Transfer {
  int src_rank = 0;
  int dst_rank = 0;
  BufKind src_buf = BufKind::Send;
  BufKind dst_buf = BufKind::Recv;
  std::uint64_t src_off = 0;  ///< byte offset into the source buffer
  std::uint64_t dst_off = 0;  ///< byte offset into the destination buffer
  std::uint64_t bytes = 0;
  bool reduce = false;  ///< combine into dst with the schedule's ReduceOp
};

/// One level-synchronous communication step.
struct Round {
  std::vector<Transfer> transfers;

  bool empty() const noexcept { return transfers.empty(); }

  Round& add(Transfer t) {
    transfers.push_back(t);
    return *this;
  }

  /// Convenience constructor for a copy transfer between remote buffers.
  static Transfer copy(int src_rank, BufKind src_buf, std::uint64_t src_off, int dst_rank,
                       BufKind dst_buf, std::uint64_t dst_off, std::uint64_t bytes);

  /// Convenience constructor for a reducing transfer.
  static Transfer combine(int src_rank, BufKind src_buf, std::uint64_t src_off, int dst_rank,
                          BufKind dst_buf, std::uint64_t dst_off, std::uint64_t bytes);
};

/// Receives rounds as a builder produces them.
class RoundSink {
 public:
  virtual ~RoundSink() = default;
  /// Called once per round, in schedule order. Empty rounds are skipped by
  /// builders and must not be emitted.
  virtual void on_round(const Round& round) = 0;
};

/// Sink that materializes the schedule (tests, debugging, small cases).
class RecordingSink final : public RoundSink {
 public:
  void on_round(const Round& round) override { rounds_.push_back(round); }
  const std::vector<Round>& rounds() const noexcept { return rounds_; }
  std::size_t total_transfers() const noexcept;
  /// Sum of bytes over all non-local transfers.
  std::uint64_t network_bytes() const noexcept;

 private:
  std::vector<Round> rounds_;
};

/// Sink that forwards to several sinks (e.g. record + cost in one pass).
class TeeSink final : public RoundSink {
 public:
  explicit TeeSink(std::vector<RoundSink*> sinks) : sinks_(std::move(sinks)) {}
  void on_round(const Round& round) override {
    for (RoundSink* s : sinks_) {
      s->on_round(round);
    }
  }

 private:
  std::vector<RoundSink*> sinks_;
};

/// Validates a round against a rank count: ranks in range, non-zero sizes.
/// (Alignment of reduce ranges is a DataExecutor concern: timing-only runs
/// legitimately use byte-granular schedules.) Throws InvalidArgument with a
/// description on violation.
void validate_round(const Round& round, int nranks);

}  // namespace acclaim::minimpi

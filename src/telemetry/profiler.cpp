#include "telemetry/profiler.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace acclaim::telemetry {

namespace {

/// The calling thread's current attribution path ("a;b;c"). A plain string
/// (not a vector) keeps the hot push/pop to an append + truncate.
thread_local std::string t_path;

}  // namespace

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

void Profiler::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(true, std::memory_order_relaxed);
}

void Profiler::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
}

void Profiler::record(const std::string& path, std::uint64_t wall_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  Node& node = nodes_[path];
  ++node.count;
  node.total_ns += wall_ns;
}

std::map<std::string, Profiler::Node> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_;
}

std::string Profiler::folded() const {
  const std::map<std::string, Node> nodes = snapshot();
  // Self time = inclusive time minus the inclusive time of direct children.
  // Children of "a;b" are paths "a;b;<leaf>" with no further ';'.
  std::ostringstream os;
  for (const auto& [path, node] : nodes) {
    std::uint64_t children_ns = 0;
    const std::string prefix = path + ";";
    for (auto it = nodes.upper_bound(path); it != nodes.end(); ++it) {
      if (it->first.rfind(prefix, 0) != 0) {
        break;
      }
      if (it->first.find(';', prefix.size()) == std::string::npos) {
        children_ns += it->second.total_ns;
      }
    }
    // Concurrent children (parallel_for workers attributing under the same
    // parent) can sum past the parent's inclusive time; clamp at zero.
    const std::uint64_t self_ns =
        node.total_ns > children_ns ? node.total_ns - children_ns : 0;
    const std::uint64_t self_us = self_ns / 1000;
    if (self_us > 0) {
      os << path << " " << self_us << "\n";
    }
  }
  return os.str();
}

void Profiler::write_folded(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw IoError("cannot open profile output: " + path);
  }
  out << folded();
  if (!out) {
    throw IoError("failed writing profile output: " + path);
  }
}

ScopedTimer::ScopedTimer(const char* label) : active_(profiler().enabled()) {
  if (!active_) {
    return;
  }
  restore_len_ = t_path.size();
  if (!t_path.empty()) {
    t_path += ';';
  }
  t_path += label;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) {
    return;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  profiler().record(
      t_path,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  t_path.resize(restore_len_);
}

}  // namespace acclaim::telemetry

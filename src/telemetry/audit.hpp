// Decision flight recorder: one structured record per algorithm selection
// and per acquisition round.
//
// ACCLAiM's practicality argument needs the tuner to be *inspectable*: an
// operator must be able to ask, for any decision the system made, what the
// model saw (feature vector), what every candidate scored (per-algorithm
// predictions and per-tree votes), how sure the model was (jackknife
// variance), what won, what came second and by what margin, and what the
// decision itself cost. The aggregate counters and trace spans in
// metrics/trace answer "how much"; this module answers "why".
//
// Like the Tracer, recording is off by default — a single relaxed atomic
// load gates every emission site — and can be turned on two ways,
// independently: enable_ring(n) keeps the last n records in memory,
// open_stream(path) appends each record as one compact JSON object per line
// (JSON-lines, the format `acclaim explain` consumes).
//
// Determinism contract: a DecisionRecord carries NO wall-clock data — its
// fields are pure functions of the seeded computation, and emission sites
// sit on the serial decision path (never inside a parallel_for; the
// det-audit-order lint check enforces this), so an audit log is
// bitwise-identical across --threads values for a fixed seed. The host-wall
// cost of building a record is routed to the metrics registry
// (audit.decision_wall_ns) instead of the record itself.
//
// The layer graph puts telemetry below collectives/core, so records speak
// strings and numbers — collective and algorithm *names*, raw scenario
// axes — not core types; core fills them in.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace acclaim::telemetry {

/// What kind of decision a record describes.
enum class DecisionKind {
  Selection,    ///< the model (or a rule table) picked an algorithm
  Acquisition,  ///< the acquisition policy picked the next benchmark point(s)
};

const char* decision_kind_name(DecisionKind kind);

/// One candidate the decision considered: an algorithm with its mean
/// predicted log-time and the number of trees that scored it fastest.
struct CandidateScore {
  std::string algorithm;
  double predicted_log_us = 0.0;
  int votes = 0;

  bool operator==(const CandidateScore&) const = default;
};

/// One decision, fully explained. All fields are deterministic for a fixed
/// seed (no timestamps, no wall-clock durations — see the header comment).
struct DecisionRecord {
  /// Monotonic per-log sequence number, assigned by AuditLog::record.
  std::uint64_t seq = 0;
  DecisionKind kind = DecisionKind::Selection;
  /// "model" | "rules" | "policy" — which component decided.
  std::string source;
  std::string collective;

  // Scenario the decision was made for (the acquisition point, or the
  // selection query).
  int nnodes = 0;
  int ppn = 0;
  std::uint64_t msg_bytes = 0;

  /// Encoded feature vector the model saw (empty for rule-table lookups).
  std::vector<double> features;

  /// Per-algorithm scores for selections (empty for rule lookups and
  /// acquisition picks, which consider points, not algorithms).
  std::vector<CandidateScore> scores;

  std::string chosen;      ///< algorithm name (selection) or point string (acquisition)
  std::string runner_up;   ///< second-best candidate; empty when there is none
  /// Predicted margin of the runner-up over the chosen candidate:
  /// exp(runner_log - chosen_log) - 1 for selections (how much slower the
  /// second-best algorithm is predicted to be), and the relative score gap
  /// for acquisitions. 0 when there is no runner-up.
  double margin = 0.0;

  /// Jackknife variance of the chosen candidate under the current model.
  double variance = 0.0;
  /// The acquisition score that drove the pick (the candidate's jackknife
  /// variance for ACCLAiM's policy); 0 for selections.
  double acq_score = 0.0;

  std::int64_t pool_size = 0;  ///< acquisition candidate pool size (0 for selections)
  std::int64_t round = 0;      ///< acquisition round / pick ordinal within the run
  bool nonp2 = false;          ///< a non-P2 message-size swap was applied
  std::int64_t batch_size = 0; ///< points collected by this round (parallel path)

  /// Virtual decision cost: decision-tree evaluations spent on this record.
  std::int64_t tree_evals = 0;

  /// Flat JSON object (one audit-log line).
  util::Json to_json() const;
  /// Inverse of to_json; throws InvalidArgument on unknown kinds, missing
  /// required fields, or type mismatches.
  static DecisionRecord from_json(const util::Json& doc);
};

/// Process-wide sink for DecisionRecords. Mirrors the Tracer's lifecycle:
/// disabled by default, ring and/or JSONL stream destinations.
class AuditLog {
 public:
  static AuditLog& global();

  /// Emission sites must check this before building a record so the
  /// disabled path stays a single relaxed load.
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Keeps the most recent `capacity` records in memory.
  void enable_ring(std::size_t capacity = 1 << 16);
  /// Streams every subsequent record as one JSON line; truncates `path`.
  /// Throws IoError if the file cannot be opened.
  void open_stream(const std::string& path);
  /// Flushes and closes the stream sink (ring recording, if on, continues).
  void close_stream();
  /// Stops recording entirely, discards the ring, and resets the sequence
  /// counter (so two identically-seeded runs produce identical logs).
  void disable();

  /// Assigns the record's seq and delivers it to the active destinations.
  void record(DecisionRecord rec);

  /// Ring contents, oldest first. Empty when the ring is off.
  std::vector<DecisionRecord> ring_snapshot() const;
  /// Records evicted from the ring since enable_ring.
  std::uint64_t ring_dropped() const;
  /// Total records recorded since construction / the last disable().
  std::uint64_t recorded() const;

 private:
  AuditLog() = default;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  bool ring_on_ = false;
  std::size_t capacity_ = 0;
  std::vector<DecisionRecord> ring_;  ///< circular once full
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t seq_ = 0;
  std::ofstream stream_;
};

/// Shorthand for AuditLog::global().
inline AuditLog& audit() { return AuditLog::global(); }

/// Records the host-wall cost of building+emitting one decision record into
/// the metrics registry (audit.decision_wall_ns histogram + audit.records
/// counter). Kept out of DecisionRecord itself so audit logs stay
/// bitwise-deterministic; call it from the emission site after record().
void observe_decision_cost(double wall_ns);

/// Parses a JSON-lines audit file (blank lines skipped). Throws IoError on
/// unreadable paths, ParseError/InvalidArgument on malformed lines.
std::vector<DecisionRecord> read_audit_file(const std::string& path);

// ---------------------------------------------------------------------------
// Explain: replay an audit log into per-decision "why" reports.
// ---------------------------------------------------------------------------

/// Aggregated view of an audit log, built once and rendered in pieces.
struct ExplainReport {
  std::vector<DecisionRecord> selections;
  std::vector<DecisionRecord> acquisitions;

  /// Convergence diagnostic per (collective, scenario) selection key: how
  /// often the chosen algorithm flipped across the log, and the position of
  /// the last flip (records-since-last-flip is the stability signal).
  struct FlipStat {
    std::string key;           ///< "collective nXppXmsg"
    std::string last_chosen;
    int decisions = 0;
    int flips = 0;
    std::uint64_t last_flip_seq = 0;  ///< seq of the last flip; 0 = never flipped
  };
  std::vector<FlipStat> flips;  ///< sorted by key
};

ExplainReport build_explain(const std::vector<DecisionRecord>& records);

/// Renders per-decision reports: decision counts, selection "why" blocks
/// (per-algorithm vote histogram, margin over runner-up, variance), the
/// acquisition variance/score trend per collective, and convergence
/// diagnostics (selection flips, records-since-last-flip). At most
/// `max_decisions` selection blocks are rendered (evenly sampled, endpoints
/// kept); the trend table is sampled down to `max_rows` rows.
void render_explain(const ExplainReport& report, std::ostream& os, int max_decisions = 4,
                    int max_rows = 12);

}  // namespace acclaim::telemetry

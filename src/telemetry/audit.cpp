#include "telemetry/audit.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace acclaim::telemetry {

const char* decision_kind_name(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::Selection: return "selection";
    case DecisionKind::Acquisition: return "acquisition";
  }
  return "?";
}

namespace {

DecisionKind parse_decision_kind(const std::string& name) {
  if (name == "selection") {
    return DecisionKind::Selection;
  }
  if (name == "acquisition") {
    return DecisionKind::Acquisition;
  }
  throw InvalidArgument("unknown decision kind '" + name + "'");
}

}  // namespace

util::Json DecisionRecord::to_json() const {
  util::Json doc = util::Json::object();
  doc["seq"] = seq;
  doc["kind"] = decision_kind_name(kind);
  doc["source"] = source;
  doc["collective"] = collective;
  doc["nnodes"] = nnodes;
  doc["ppn"] = ppn;
  doc["msg_bytes"] = msg_bytes;
  if (!features.empty()) {
    util::Json f = util::Json::array();
    for (double v : features) {
      f.push_back(v);
    }
    doc["features"] = std::move(f);
  }
  if (!scores.empty()) {
    util::Json s = util::Json::array();
    for (const CandidateScore& c : scores) {
      util::Json e = util::Json::object();
      e["algorithm"] = c.algorithm;
      e["log_us"] = c.predicted_log_us;
      e["votes"] = c.votes;
      s.push_back(std::move(e));
    }
    doc["scores"] = std::move(s);
  }
  doc["chosen"] = chosen;
  if (!runner_up.empty()) {
    doc["runner_up"] = runner_up;
    doc["margin"] = margin;
  }
  doc["variance"] = variance;
  if (kind == DecisionKind::Acquisition) {
    doc["acq_score"] = acq_score;
    doc["pool_size"] = pool_size;
    doc["round"] = round;
    doc["nonp2"] = nonp2;
    if (batch_size > 0) {
      doc["batch_size"] = batch_size;
    }
  }
  doc["tree_evals"] = tree_evals;
  return doc;
}

DecisionRecord DecisionRecord::from_json(const util::Json& doc) {
  DecisionRecord rec;
  rec.seq = static_cast<std::uint64_t>(doc.at("seq").as_int());
  rec.kind = parse_decision_kind(doc.at("kind").as_string());
  rec.source = doc.at("source").as_string();
  rec.collective = doc.at("collective").as_string();
  rec.nnodes = static_cast<int>(doc.at("nnodes").as_int());
  rec.ppn = static_cast<int>(doc.at("ppn").as_int());
  rec.msg_bytes = static_cast<std::uint64_t>(doc.at("msg_bytes").as_int());
  if (doc.contains("features")) {
    for (const util::Json& v : doc.at("features").as_array()) {
      rec.features.push_back(v.as_number());
    }
  }
  if (doc.contains("scores")) {
    for (const util::Json& e : doc.at("scores").as_array()) {
      CandidateScore c;
      c.algorithm = e.at("algorithm").as_string();
      c.predicted_log_us = e.at("log_us").as_number();
      c.votes = static_cast<int>(e.at("votes").as_int());
      rec.scores.push_back(std::move(c));
    }
  }
  rec.chosen = doc.at("chosen").as_string();
  if (doc.contains("runner_up")) {
    rec.runner_up = doc.at("runner_up").as_string();
    rec.margin = doc.at("margin").as_number();
  }
  rec.variance = doc.at("variance").as_number();
  if (doc.contains("acq_score")) {
    rec.acq_score = doc.at("acq_score").as_number();
  }
  if (doc.contains("pool_size")) {
    rec.pool_size = doc.at("pool_size").as_int();
  }
  if (doc.contains("round")) {
    rec.round = doc.at("round").as_int();
  }
  if (doc.contains("nonp2")) {
    rec.nonp2 = doc.at("nonp2").as_bool();
  }
  if (doc.contains("batch_size")) {
    rec.batch_size = doc.at("batch_size").as_int();
  }
  if (doc.contains("tree_evals")) {
    rec.tree_evals = doc.at("tree_evals").as_int();
  }
  return rec;
}

AuditLog& AuditLog::global() {
  static AuditLog log;
  return log;
}

void AuditLog::enable_ring(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_on_ = true;
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
  next_ = 0;
  dropped_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void AuditLog::open_stream(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  stream_.close();
  stream_.clear();
  stream_.open(path, std::ios::trunc);
  if (!stream_) {
    throw IoError("cannot open audit log for writing: " + path);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void AuditLog::close_stream() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_.is_open()) {
    stream_.flush();
    stream_.close();
  }
  enabled_.store(ring_on_, std::memory_order_relaxed);
}

void AuditLog::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_.is_open()) {
    stream_.flush();
    stream_.close();
  }
  ring_on_ = false;
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
  seq_ = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

void AuditLog::record(DecisionRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  rec.seq = seq_++;
  if (stream_.is_open()) {
    stream_ << rec.to_json().dump() << '\n';
  }
  if (ring_on_) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(rec));
    } else {
      ring_[next_] = std::move(rec);
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
    }
  }
}

std::vector<DecisionRecord> AuditLog::ring_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DecisionRecord> out;
  out.reserve(ring_.size());
  // `next_` is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t AuditLog::ring_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t AuditLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void observe_decision_cost(double wall_ns) {
  static Counter& records = metrics().counter("audit.records");
  static Histogram& cost = metrics().histogram("audit.decision_wall_ns", {100.0, 32});
  records.add();
  cost.observe(wall_ns);
}

std::vector<DecisionRecord> read_audit_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open audit log: " + path);
  }
  std::vector<DecisionRecord> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    try {
      out.push_back(DecisionRecord::from_json(util::Json::parse(line)));
    } catch (const Error& e) {
      throw ParseError(path + ":" + std::to_string(lineno) + ": " + e.what(), lineno, 1);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

ExplainReport build_explain(const std::vector<DecisionRecord>& records) {
  ExplainReport report;
  // key -> running flip stat; std::map keeps render order stable.
  std::map<std::string, ExplainReport::FlipStat> flips;
  for (const DecisionRecord& rec : records) {
    if (rec.kind == DecisionKind::Acquisition) {
      report.acquisitions.push_back(rec);
      continue;
    }
    report.selections.push_back(rec);
    std::ostringstream key;
    key << rec.collective << " n" << rec.nnodes << " pp" << rec.ppn << " msg" << rec.msg_bytes;
    ExplainReport::FlipStat& stat = flips[key.str()];
    stat.key = key.str();
    ++stat.decisions;
    if (!stat.last_chosen.empty() && stat.last_chosen != rec.chosen) {
      ++stat.flips;
      stat.last_flip_seq = rec.seq;
    }
    stat.last_chosen = rec.chosen;
  }
  report.flips.reserve(flips.size());
  for (auto& [key, stat] : flips) {
    report.flips.push_back(std::move(stat));
  }
  return report;
}

namespace {

/// Evenly sampled indices over [0, n), endpoints kept.
std::vector<std::size_t> sample_indices(std::size_t n, int max_rows) {
  const std::size_t rows =
      std::min<std::size_t>(n, static_cast<std::size_t>(std::max(2, max_rows)));
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < rows; ++r) {
    out.push_back(rows == 1 ? 0 : r * (n - 1) / (rows - 1));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void render_selection_block(const DecisionRecord& rec, std::ostream& os) {
  os << "--- decision #" << rec.seq << " [" << rec.source << "] " << rec.collective << " n"
     << rec.nnodes << " pp" << rec.ppn << " msg" << rec.msg_bytes << " ---\n";
  os << "chosen: " << rec.chosen;
  if (!rec.runner_up.empty()) {
    os << "   runner-up: " << rec.runner_up << " (+" << util::fixed(rec.margin * 100.0, 1)
       << "% predicted)";
  }
  os << "   jackknife variance: " << util::fixed(rec.variance, 6) << "\n";
  if (rec.scores.empty()) {
    return;
  }
  int max_votes = 1;
  for (const CandidateScore& c : rec.scores) {
    max_votes = std::max(max_votes, c.votes);
  }
  util::TablePrinter table({"algorithm", "pred log(us)", "votes", ""});
  for (const CandidateScore& c : rec.scores) {
    const std::size_t bar = static_cast<std::size_t>(29 * c.votes / max_votes);
    std::string name = c.algorithm;
    if (name == rec.chosen) {
      name += " *";
    }
    table.add_row({name, util::fixed(c.predicted_log_us, 4), std::to_string(c.votes),
                   std::string(bar, '#')});
  }
  table.print(os);
}

}  // namespace

void render_explain(const ExplainReport& report, std::ostream& os, int max_decisions,
                    int max_rows) {
  os << "=== audit summary ===\n";
  {
    std::map<std::string, std::uint64_t> counts;
    for (const DecisionRecord& r : report.selections) {
      ++counts["selection/" + r.source + " (" + r.collective + ")"];
    }
    for (const DecisionRecord& r : report.acquisitions) {
      ++counts["acquisition/" + r.source + " (" + r.collective + ")"];
    }
    util::TablePrinter table({"decision", "count"});
    for (const auto& [name, count] : counts) {
      table.add_row({name, std::to_string(count)});
    }
    table.print(os);
  }

  if (!report.selections.empty()) {
    os << "\n=== selection decisions (" << report.selections.size() << " total, showing "
       << std::min<std::size_t>(report.selections.size(),
                                static_cast<std::size_t>(std::max(2, max_decisions)))
       << ") ===\n";
    for (std::size_t i : sample_indices(report.selections.size(), max_decisions)) {
      render_selection_block(report.selections[i], os);
    }
  }

  if (!report.acquisitions.empty()) {
    // Group the trend by collective so interleaved multi-collective logs
    // stay readable.
    std::map<std::string, std::vector<const DecisionRecord*>> by_coll;
    for (const DecisionRecord& r : report.acquisitions) {
      by_coll[r.collective].push_back(&r);
    }
    for (const auto& [coll, recs] : by_coll) {
      os << "\n=== acquisition trend: " << coll << " (" << recs.size() << " rounds) ===\n";
      util::TablePrinter table({"round", "picked", "acq score", "variance", "pool", "batch",
                                "nonp2"});
      for (std::size_t i : sample_indices(recs.size(), max_rows)) {
        const DecisionRecord& r = *recs[i];
        table.add_row({std::to_string(r.round), r.chosen, util::fixed(r.acq_score, 6),
                       util::fixed(r.variance, 6), std::to_string(r.pool_size),
                       r.batch_size > 0 ? std::to_string(r.batch_size) : "1",
                       r.nonp2 ? "yes" : "no"});
      }
      table.print(os);
      // Variance trend endpoints: the convergence story in two numbers.
      const double first = recs.front()->acq_score;
      const double last = recs.back()->acq_score;
      os << "acquisition score " << util::fixed(first, 6) << " -> " << util::fixed(last, 6);
      if (first > 0.0) {
        os << "  (" << util::fixed(last / first, 3) << "x)";
      }
      os << "\n";
    }
  }

  if (!report.flips.empty()) {
    os << "\n=== convergence: selection stability ===\n";
    const std::uint64_t last_seq =
        report.selections.empty() ? 0 : report.selections.back().seq;
    util::TablePrinter table({"scenario", "decisions", "flips", "records since last flip"});
    int rendered = 0;
    for (const ExplainReport::FlipStat& f : report.flips) {
      if (rendered >= std::max(2, max_rows)) {
        os << "(" << report.flips.size() - static_cast<std::size_t>(rendered)
           << " more scenarios elided; raise --rows to see them)\n";
        break;
      }
      const std::string since =
          f.flips == 0 ? "never flipped"
                       : std::to_string(last_seq >= f.last_flip_seq ? last_seq - f.last_flip_seq
                                                                    : 0);
      table.add_row({f.key, std::to_string(f.decisions), std::to_string(f.flips), since});
      ++rendered;
    }
    table.print(os);
  }
}

}  // namespace acclaim::telemetry

// Structured tracing for the autotuning pipeline.
//
// Instrumented code emits typed events (one per training iteration,
// acquisition pick, scheduled batch, benchmark run, model refit,
// convergence check, and pipeline phase) into the process-wide Tracer.
// Recording is off by default — a single relaxed atomic load gates every
// site — and can be turned on two ways, independently:
//  * enable_ring(n): keep the last n events in memory (tests, the report
//    builder after an in-process run);
//  * open_stream(path): append every event as one compact JSON object per
//    line (JSON-lines), the format `acclaim report` consumes.
// Events carry a wall-clock timestamp relative to the tracer epoch plus a
// free-form field object; the fields that matter to the report builder are
// documented per event kind in DESIGN.md ("Observability").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace acclaim::telemetry {

enum class EventKind {
  TrainingIteration,  ///< one active-learning iteration completed
  PointAcquired,      ///< acquisition policy picked a benchmark point
  BatchScheduled,     ///< parallel-collection scheduler planned a batch
  BenchmarkRun,       ///< environment measured one benchmark point
  ModelRefit,         ///< primary model retrained
  ConvergenceCheck,   ///< variance-convergence criterion evaluated
  Phase,              ///< a timed pipeline phase (per-collective training, ...)
  FleetJob,           ///< one fleet-replay job finished tuning
};

const char* event_kind_name(EventKind kind);
/// Inverse of event_kind_name; nullopt for unknown names (the trace format
/// is forward-compatible: readers skip kinds they do not know).
std::optional<EventKind> parse_event_kind(const std::string& name);

struct TraceEvent {
  EventKind kind = EventKind::Phase;
  /// Subject of the event — the collective being trained for most kinds,
  /// the phase name for Phase events.
  std::string label;
  /// Wall-clock milliseconds since the tracer epoch.
  double t_wall_ms = 0.0;
  /// Kind-specific payload (numbers, strings, bools).
  util::JsonObject fields;

  /// Flat object: {"event": .., "t_ms": .., "label": .., <fields>...}.
  util::Json to_json() const;
  /// Inverse of to_json; throws InvalidArgument on unknown event kinds.
  static TraceEvent from_json(const util::Json& doc);
};

class Tracer {
 public:
  /// The process-wide tracer all instrumented library code records into.
  static Tracer& global();

  /// True when at least one destination (ring or stream) is active.
  /// Instrument sites must check this before building an event so the
  /// disabled path stays a single relaxed load.
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Keeps the most recent `capacity` events in memory.
  void enable_ring(std::size_t capacity = 1 << 16);
  /// Streams every subsequent event as one JSON line; truncates `path`.
  /// Throws IoError if the file cannot be opened.
  void open_stream(const std::string& path);
  /// Flushes and closes the stream sink (ring recording, if on, continues).
  void close_stream();
  /// Stops recording entirely and discards the ring contents.
  void disable();

  void record(TraceEvent ev);

  /// Ring contents, oldest first. Empty when the ring is off.
  std::vector<TraceEvent> ring_snapshot() const;
  /// Events evicted from the ring since enable_ring (0 when none dropped —
  /// reports use this to flag truncated trajectories).
  std::uint64_t ring_dropped() const;
  /// Total events recorded (ring + stream) since construction/disable().
  std::uint64_t recorded() const;

 private:
  Tracer();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  bool ring_on_ = false;
  std::size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;  ///< circular once full
  std::size_t next_ = 0;          ///< ring write position
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  std::ofstream stream_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Shorthand for Tracer::global().
inline Tracer& tracer() { return Tracer::global(); }

/// RAII wall-clock timer: emits a Phase event with a `wall_ms` field when
/// destroyed. Extra fields (e.g. the simulated-clock duration, which the
/// run report prefers) can be attached before the scope closes. No-op when
/// the tracer is disabled at construction time.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string label, Tracer& tracer = Tracer::global());
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  bool active() const noexcept { return active_; }
  /// Attaches a field to the eventual Phase event.
  void annotate(const std::string& key, util::Json value);

 private:
  Tracer& tracer_;
  bool active_;
  TraceEvent ev_;
  std::chrono::steady_clock::time_point start_;
};

/// Parses a JSON-lines trace file (blank lines skipped, events of unknown
/// kind skipped). Throws IoError on unreadable paths, ParseError on
/// malformed lines.
std::vector<TraceEvent> read_trace_file(const std::string& path);

}  // namespace acclaim::telemetry

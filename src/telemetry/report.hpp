// Run reports: fold a trace into a human-readable summary.
//
// The report builder consumes the events a tuning run emitted (from the
// in-memory ring or a JSON-lines file) and aggregates exactly the
// quantities the paper's practicality argument rests on: where training
// time went per collective, how many points each model needed, how the
// convergence signal (cumulative jackknife variance) moved, and how well
// the topology-aware scheduler packed parallel batches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace acclaim::telemetry {

struct RunReport {
  /// One row per Phase event (per-collective training phases and any other
  /// scoped phase the run emitted), in trace order.
  struct PhaseRow {
    std::string label;
    double sim_s = 0.0;   ///< simulated collection seconds ("sim_s" field)
    double wall_ms = 0.0; ///< host wall clock ("wall_ms" field)
    std::int64_t points = -1;
    std::int64_t iterations = -1;
    bool converged = false;
    bool has_outcome = false;  ///< points/iterations/converged fields present
  };

  /// Variance-trajectory sample from a training_iteration event.
  struct VarianceSample {
    int iteration = 0;
    std::size_t points = 0;
    double variance = 0.0;
    double ema = 0.0;
    int batch_size = 1;
  };

  std::vector<PhaseRow> phases;
  double total_sim_s = 0.0;  ///< sum of phase sim_s

  /// Per-collective variance trajectory, keyed by event label.
  std::map<std::string, std::vector<VarianceSample>> trajectories;

  /// Scheduler batch-size occupancy: batch size -> number of batches.
  std::map<int, std::uint64_t> batch_histogram;

  /// Events seen, by kind name (includes kinds not otherwise aggregated).
  std::map<std::string, std::uint64_t> event_counts;

  std::uint64_t benchmark_runs = 0;
  double benchmark_sim_cost_s = 0.0;  ///< summed benchmark "cost_s" fields
  std::uint64_t model_refits = 0;
  std::uint64_t points_acquired = 0;
  std::uint64_t nonp2_swaps = 0;
};

/// Aggregates a trace (any event order; events of irrelevant kinds are
/// counted but otherwise ignored).
RunReport build_report(const std::vector<TraceEvent>& events);

/// Renders the report as aligned text tables (util::TablePrinter): event
/// summary, phase timing, per-collective variance trajectory (sampled down
/// to at most `max_trajectory_rows` rows per collective), and the
/// batch-size histogram.
void render_report(const RunReport& report, std::ostream& os, int max_trajectory_rows = 12);

/// Renders a metrics snapshot (the JSON shape MetricsRegistry::to_json /
/// --metrics-out produce): non-zero counters and gauges, plus one row per
/// histogram with count, mean, and p50/p95/p99 estimated from the log2
/// bucket counts (percentile_from_buckets). Throws InvalidArgument when the
/// document is not a metrics snapshot.
void render_metrics_summary(const util::Json& metrics_doc, std::ostream& os);

/// Loads a --metrics-out snapshot for render_metrics_summary, turning every
/// failure mode into one clear InvalidArgument line naming the path: file
/// missing or unreadable, file empty, JSON malformed, or JSON valid but not
/// a metrics snapshot (missing counters/gauges/histograms objects).
util::Json load_metrics_snapshot(const std::string& path);

/// Converts a trace to the chrome://tracing / Perfetto JSON object format
/// ({"traceEvents": [...]}, timestamps in microseconds since the tracer
/// epoch):
///  * Phase events become complete ("X") spans — their recorded `wall_ms`
///    duration ends at the event's timestamp — on thread lane 0;
///  * batched BenchmarkRun events (a `slot` field, as emitted by
///    LiveEnvironment::measure_scheduled) become complete spans of their
///    `wall_ms` host duration on lane slot+1, visualizing batch overlap;
///  * every other event becomes an instant ("i") event on lane 0.
/// All original fields ride along under "args".
util::Json chrome_trace_json(const std::vector<TraceEvent>& events);

/// Serializes chrome_trace_json(events) to `path`. Throws IoError when the
/// file cannot be written.
void write_chrome_trace(const std::vector<TraceEvent>& events, const std::string& path);

}  // namespace acclaim::telemetry

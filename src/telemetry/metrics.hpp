// Process-wide metrics registry: counters, gauges, and log-scale histograms.
//
// Instrumented library code records into named instruments owned by the
// global registry; the CLI (--metrics-out) and the benches export a JSON
// snapshot at the end of a run. Design constraints, in order:
//  * lock-cheap on the hot path — recording is a relaxed atomic RMW, no
//    mutex; the registry mutex guards only name->instrument resolution,
//    which call sites amortize with a function-local static reference;
//  * resettable — tests zero all values between cases without invalidating
//    cached references (instruments are never destroyed, only cleared);
//  * always compiled in — unlike the trace sinks there is no off switch;
//    the per-event cost must therefore stay in the nanosecond range.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace acclaim::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written or accumulated floating-point value (set() for levels,
/// add() for totals such as simulated seconds).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramOptions {
  /// Upper bound of the first bucket; every later bucket doubles it
  /// (fixed log-scale, so bucketing needs no per-histogram configuration
  /// to stay comparable across runs).
  double first_bound = 1e-6;
  /// Number of finite buckets; values beyond the last bound land in a
  /// dedicated overflow bucket.
  int buckets = 48;
};

/// Fixed log2-scale histogram: bucket i holds observations in
/// (first_bound * 2^(i-1), first_bound * 2^i], bucket 0 holds everything
/// <= first_bound, and the final (overflow) bucket everything beyond the
/// last finite bound. Also tracks count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.value(); }
  double mean() const noexcept;
  /// +inf / -inf when empty.
  double min() const noexcept;
  double max() const noexcept;

  int num_buckets() const noexcept { return static_cast<int>(buckets_.size()); }
  /// Upper bound of finite bucket i; the overflow bucket has no bound.
  double bucket_bound(int i) const;
  std::uint64_t bucket_count(int i) const;

  /// p-quantile (p in [0, 1]) estimated from the log2 bucket counts with
  /// linear interpolation inside the covering bucket, clamped to the
  /// observed [min, max]. NaN when the histogram is empty.
  double percentile(double p) const;

  void reset() noexcept;

  /// {"count":..,"sum":..,"min":..,"max":..,"buckets":[{"le":..,"n":..}...]}
  /// Empty buckets are elided so exports stay small.
  util::Json to_json() const;

 private:
  HistogramOptions opts_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< last entry = overflow
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named instrument store. Instruments live for the registry's lifetime;
/// reset() clears values but never invalidates references, so call sites
/// may cache `static Counter& c = metrics().counter("x");` safely.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumented library code.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, HistogramOptions opts = {});

  /// Zeroes every instrument (tests; the CLI before a run).
  void reset();

  /// {"counters":{..},"gauges":{..},"histograms":{..}} with instruments in
  /// name order. Zero-valued counters/gauges are included (a zero counter
  /// is information: the code path was compiled in but never taken).
  util::Json to_json() const;

  /// Serializes to_json() to `path` (2-space indent); throws IoError.
  void dump_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  // Insertion-ordered (to_json sorts by name); unique_ptr keeps instrument
  // addresses stable across later insertions.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// One (upper_bound, count) pair of a log2-scale histogram; an infinite
/// bound marks the overflow bucket. Mirrors the Histogram::to_json layout so
/// `acclaim report --metrics` can summarize exported snapshots.
struct BucketSlice {
  double le = 0.0;
  std::uint64_t n = 0;
};

/// Shared percentile estimator for Histogram::percentile and for snapshots
/// re-read from JSON: walks the (sparse, sorted) bucket list to the bucket
/// covering rank p*count, interpolates linearly between the bucket's bounds
/// (each log2 bucket spans [le/2, le]), and clamps to [min_v, max_v]. NaN
/// when count is 0.
double percentile_from_buckets(const std::vector<BucketSlice>& buckets, std::uint64_t count,
                               double min_v, double max_v, double p);

/// Prometheus text-format (version 0.0.4) exposition of a registry snapshot:
/// counters as `acclaim_<name>_total`, gauges as `acclaim_<name>`, histograms
/// as the cumulative `_bucket{le=...}` / `_sum` / `_count` series, each with a
/// `# TYPE` line. Instrument names are sanitized ('.' and '-' become '_').
/// This is the exposition the future acclaimd daemon will serve on /metrics;
/// the CLI exposes it today via --prom-out for scrape-pipeline dry runs.
std::string prometheus_text(const MetricsRegistry& registry);

/// Copies the global thread pool's usage counters into the registry as
/// gauges (threadpool.threads, .tasks_executed, .parallel_fors,
/// .inline_runs, .queue_peak). The pool lives below telemetry in the layer
/// graph and cannot record into the registry itself; call this before
/// exporting a snapshot (the CLI and benches do).
void publish_thread_pool_metrics();

}  // namespace acclaim::telemetry

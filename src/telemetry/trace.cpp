#include "telemetry/trace.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace acclaim::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::TrainingIteration: return "training_iteration";
    case EventKind::PointAcquired: return "point_acquired";
    case EventKind::BatchScheduled: return "batch_scheduled";
    case EventKind::BenchmarkRun: return "benchmark_run";
    case EventKind::ModelRefit: return "model_refit";
    case EventKind::ConvergenceCheck: return "convergence_check";
    case EventKind::Phase: return "phase";
    case EventKind::FleetJob: return "fleet_job";
  }
  return "?";
}

std::optional<EventKind> parse_event_kind(const std::string& name) {
  for (EventKind k : {EventKind::TrainingIteration, EventKind::PointAcquired,
                      EventKind::BatchScheduled, EventKind::BenchmarkRun, EventKind::ModelRefit,
                      EventKind::ConvergenceCheck, EventKind::Phase, EventKind::FleetJob}) {
    if (name == event_kind_name(k)) {
      return k;
    }
  }
  return std::nullopt;
}

util::Json TraceEvent::to_json() const {
  util::Json doc = util::Json::object();
  doc["event"] = event_kind_name(kind);
  doc["t_ms"] = t_wall_ms;
  if (!label.empty()) {
    doc["label"] = label;
  }
  for (const auto& [key, value] : fields) {
    doc[key] = value;
  }
  return doc;
}

TraceEvent TraceEvent::from_json(const util::Json& doc) {
  const auto kind = parse_event_kind(doc.at("event").as_string());
  require(kind.has_value(),
          "unknown trace event kind '" + doc.at("event").as_string() + "'");
  TraceEvent ev;
  ev.kind = *kind;
  if (doc.contains("t_ms")) {
    ev.t_wall_ms = doc.at("t_ms").as_number();
  }
  if (doc.contains("label")) {
    ev.label = doc.at("label").as_string();
  }
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "event" || key == "t_ms" || key == "label") {
      continue;
    }
    ev.fields[key] = value;
  }
  return ev;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::enable_ring(std::size_t capacity) {
  std::lock_guard lock(mu_);
  require(capacity >= 1, "trace ring capacity must be >= 1");
  ring_on_ = true;
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity, 4096));
  next_ = 0;
  dropped_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::open_stream(const std::string& path) {
  std::lock_guard lock(mu_);
  stream_.close();
  stream_.clear();
  stream_.open(path, std::ios::out | std::ios::trunc);
  if (!stream_) {
    throw IoError("cannot open trace stream '" + path + "' for writing");
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::close_stream() {
  std::lock_guard lock(mu_);
  stream_.close();
  enabled_.store(ring_on_, std::memory_order_relaxed);
}

void Tracer::disable() {
  std::lock_guard lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  ring_on_ = false;
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
  recorded_ = 0;
  stream_.close();
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  if (!ring_on_ && !stream_.is_open()) {
    return;  // raced with disable()/close_stream()
  }
  ev.t_wall_ms = std::chrono::duration<double, std::milli>(now - epoch_).count();
  ++recorded_;
  if (stream_.is_open()) {
    stream_ << ev.to_json().dump(0) << '\n';
  }
  if (ring_on_) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(ev));
    } else {
      ring_[next_] = std::move(ev);
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
    }
  }
}

std::vector<TraceEvent> Tracer::ring_snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: when the ring wrapped, next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::ring_dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

ScopedPhase::ScopedPhase(std::string label, Tracer& tracer)
    : tracer_(tracer), active_(tracer.enabled()), start_(std::chrono::steady_clock::now()) {
  ev_.kind = EventKind::Phase;
  ev_.label = std::move(label);
}

ScopedPhase::~ScopedPhase() {
  if (!active_) {
    return;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  ev_.fields["wall_ms"] = std::chrono::duration<double, std::milli>(elapsed).count();
  tracer_.record(std::move(ev_));
}

void ScopedPhase::annotate(const std::string& key, util::Json value) {
  if (active_) {
    ev_.fields[key] = std::move(value);
  }
}

std::vector<TraceEvent> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open trace file '" + path + "'");
  }
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    const util::Json doc = util::Json::parse(line);
    if (!parse_event_kind(doc.at("event").as_string()).has_value()) {
      continue;  // forward compatibility: skip unknown kinds
    }
    events.push_back(TraceEvent::from_json(doc));
  }
  return events;
}

}  // namespace acclaim::telemetry

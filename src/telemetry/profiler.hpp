// Lightweight self-profiler: scoped-timer attribution tree.
//
// Instrumented code brackets interesting work with ScopedTimer("label");
// nested timers on the same thread form an attribution path ("tune-job;
// train:bcast;forest.fit"). The profiler aggregates wall time and hit counts
// per path and exports:
//  * folded stacks ("a;b;c <self_us>" lines) consumable by flamegraph.pl /
//    speedscope — the standard "where did the time go" artifact;
//  * via telemetry::prometheus_text (metrics.hpp), the registry exposition
//    the future acclaimd daemon will serve on /metrics.
//
// Disabled by default: every ScopedTimer constructor is gated on one relaxed
// atomic load, so instrumentation sites cost ~1 ns when profiling is off.
// Host-wall attribution is observability-only — it never feeds back into the
// deterministic computation (the audit log and models never see it).
#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace acclaim::telemetry {

class Profiler {
 public:
  static Profiler& global();

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void enable();
  /// Stops recording and clears all accumulated attribution.
  void disable();
  /// Clears accumulated attribution, keeps the enabled state.
  void reset();

  struct Node {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;  ///< inclusive wall time
  };

  /// Adds one timed interval under `path` (";"-joined label stack).
  void record(const std::string& path, std::uint64_t wall_ns);

  /// Accumulated attribution, keyed by path (ordered, so exports are stable).
  std::map<std::string, Node> snapshot() const;

  /// Folded-stack export: one "a;b;c <self_us>" line per path with non-zero
  /// self time (inclusive time minus the inclusive time of direct children),
  /// in path order. Feed to flamegraph.pl or speedscope.
  std::string folded() const;

  /// Writes folded() to `path`; throws IoError.
  void write_folded(const std::string& path) const;

 private:
  Profiler() = default;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, Node> nodes_;
};

/// Shorthand for Profiler::global().
inline Profiler& profiler() { return Profiler::global(); }

/// RAII attribution scope. Pushes `label` onto the calling thread's path
/// stack for the duration of the scope; the destructor records the elapsed
/// wall time under the full path. No-op (one relaxed load) when the profiler
/// is disabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* label);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  bool active() const noexcept { return active_; }

 private:
  bool active_;
  std::size_t restore_len_ = 0;  ///< thread-local path length to restore
  std::chrono::steady_clock::time_point start_;
};

}  // namespace acclaim::telemetry

#include "telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace acclaim::telemetry {

namespace {

double num_field(const TraceEvent& ev, const char* key, double fallback = 0.0) {
  const std::string k(key);
  if (!ev.fields.contains(k)) {
    return fallback;
  }
  const util::Json& v = ev.fields.at(k);
  return v.is_number() ? v.as_number() : fallback;
}

bool bool_field(const TraceEvent& ev, const char* key) {
  const std::string k(key);
  return ev.fields.contains(k) && ev.fields.at(k).is_bool() && ev.fields.at(k).as_bool();
}

}  // namespace

RunReport build_report(const std::vector<TraceEvent>& events) {
  RunReport report;
  for (const TraceEvent& ev : events) {
    ++report.event_counts[event_kind_name(ev.kind)];
    switch (ev.kind) {
      case EventKind::Phase: {
        RunReport::PhaseRow row;
        row.label = ev.label;
        row.sim_s = num_field(ev, "sim_s");
        row.wall_ms = num_field(ev, "wall_ms");
        if (ev.fields.contains("points")) {
          row.points = static_cast<std::int64_t>(num_field(ev, "points"));
          row.iterations = static_cast<std::int64_t>(num_field(ev, "iterations"));
          row.converged = bool_field(ev, "converged");
          row.has_outcome = true;
        }
        report.total_sim_s += row.sim_s;
        report.phases.push_back(std::move(row));
        break;
      }
      case EventKind::TrainingIteration: {
        RunReport::VarianceSample s;
        s.iteration = static_cast<int>(num_field(ev, "iteration"));
        s.points = static_cast<std::size_t>(num_field(ev, "points"));
        s.variance = num_field(ev, "variance");
        s.ema = num_field(ev, "variance_ema");
        s.batch_size = static_cast<int>(num_field(ev, "batch_size", 1.0));
        report.trajectories[ev.label].push_back(s);
        break;
      }
      case EventKind::BatchScheduled:
        ++report.batch_histogram[static_cast<int>(num_field(ev, "batch_size", 1.0))];
        break;
      case EventKind::BenchmarkRun:
        ++report.benchmark_runs;
        report.benchmark_sim_cost_s += num_field(ev, "cost_s");
        break;
      case EventKind::ModelRefit:
        ++report.model_refits;
        break;
      case EventKind::PointAcquired:
        ++report.points_acquired;
        if (bool_field(ev, "nonp2")) {
          ++report.nonp2_swaps;
        }
        break;
      case EventKind::ConvergenceCheck:
      case EventKind::FleetJob:
        break;
    }
  }
  return report;
}

void render_report(const RunReport& report, std::ostream& os, int max_trajectory_rows) {
  os << "=== run summary ===\n";
  {
    util::TablePrinter table({"events", "count"});
    for (const auto& [name, count] : report.event_counts) {
      table.add_row({name, std::to_string(count)});
    }
    table.print(os);
  }
  os << "\nbenchmark runs: " << report.benchmark_runs << " ("
     << util::format_seconds(report.benchmark_sim_cost_s) << " simulated)"
     << "  model refits: " << report.model_refits << "  points acquired: "
     << report.points_acquired << " (" << report.nonp2_swaps << " non-P2 swaps)\n";

  if (!report.phases.empty()) {
    os << "\n=== phase timing ===\n";
    util::TablePrinter table({"phase", "sim time", "wall", "points", "iters", "converged"});
    for (const auto& p : report.phases) {
      table.add_row({p.label, util::format_seconds(p.sim_s),
                     util::fixed(p.wall_ms, 1) + " ms",
                     p.has_outcome ? std::to_string(p.points) : "-",
                     p.has_outcome ? std::to_string(p.iterations) : "-",
                     p.has_outcome ? (p.converged ? "yes" : "no") : "-"});
    }
    table.print(os);
    os << "total simulated training: " << util::format_seconds(report.total_sim_s) << "\n";
  }

  for (const auto& [collective, samples] : report.trajectories) {
    os << "\n=== variance trajectory: " << collective << " ===\n";
    util::TablePrinter table({"iter", "points", "cum. variance", "ema", "batch"});
    // Sample evenly but always keep the first and last iteration — the
    // endpoints are what convergence questions are about.
    const std::size_t n = samples.size();
    const std::size_t rows = std::min<std::size_t>(
        n, static_cast<std::size_t>(std::max(2, max_trajectory_rows)));
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = rows == 1 ? 0 : r * (n - 1) / (rows - 1);
      const auto& s = samples[i];
      table.add_row({std::to_string(s.iteration), std::to_string(s.points),
                     util::fixed(s.variance, 6), util::fixed(s.ema, 6),
                     std::to_string(s.batch_size)});
    }
    table.print(os);
  }

  if (!report.batch_histogram.empty()) {
    os << "\n=== scheduler batch occupancy ===\n";
    std::uint64_t peak = 0;
    for (const auto& [size, count] : report.batch_histogram) {
      peak = std::max(peak, count);
    }
    util::TablePrinter table({"batch size", "batches", ""});
    for (const auto& [size, count] : report.batch_histogram) {
      const std::size_t bar =
          peak == 0 ? 0 : static_cast<std::size_t>(1 + 29 * (count - 1) / std::max<std::uint64_t>(peak, 1));
      table.add_row({std::to_string(size), std::to_string(count), std::string(bar, '#')});
    }
    table.print(os);
  }
}

void render_metrics_summary(const util::Json& metrics_doc, std::ostream& os) {
  require(metrics_doc.is_object() && metrics_doc.contains("histograms") &&
              metrics_doc.contains("counters") && metrics_doc.contains("gauges"),
          "not a metrics snapshot (expected counters/gauges/histograms)");

  const auto fmt = [](double v) {
    if (std::isnan(v)) {
      return std::string("-");
    }
    return util::fixed(v, v < 10.0 ? 4 : 1);
  };

  os << "=== metrics: counters & gauges ===\n";
  {
    util::TablePrinter table({"instrument", "value"});
    for (const auto& [name, value] : metrics_doc.at("counters").as_object()) {
      // Never-touched instruments report exactly 0. acclaim-lint: allow(hyg-float-eq)
      if (value.as_number() != 0.0) {
        table.add_row({name, std::to_string(static_cast<std::uint64_t>(value.as_number()))});
      }
    }
    for (const auto& [name, value] : metrics_doc.at("gauges").as_object()) {
      // Never-touched instruments report exactly 0. acclaim-lint: allow(hyg-float-eq)
      if (value.as_number() != 0.0) {
        table.add_row({name, fmt(value.as_number())});
      }
    }
    table.print(os);
  }

  os << "\n=== metrics: histogram percentiles ===\n";
  util::TablePrinter table({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
  for (const auto& [name, h] : metrics_doc.at("histograms").as_object()) {
    const auto count = static_cast<std::uint64_t>(h.at("count").as_number());
    if (count == 0) {
      continue;
    }
    std::vector<BucketSlice> slices;
    for (const util::Json& b : h.at("buckets").as_array()) {
      BucketSlice s;
      // The overflow bucket serializes its bound as the string "inf".
      s.le = b.at("le").is_number() ? b.at("le").as_number()
                                    : std::numeric_limits<double>::infinity();
      s.n = static_cast<std::uint64_t>(b.at("n").as_number());
      slices.push_back(s);
    }
    const double min_v = h.contains("min") ? h.at("min").as_number() : 0.0;
    const double max_v = h.contains("max") ? h.at("max").as_number() : 0.0;
    table.add_row({name, std::to_string(count),
                   fmt(h.contains("mean") ? h.at("mean").as_number() : 0.0),
                   fmt(percentile_from_buckets(slices, count, min_v, max_v, 0.50)),
                   fmt(percentile_from_buckets(slices, count, min_v, max_v, 0.95)),
                   fmt(percentile_from_buckets(slices, count, min_v, max_v, 0.99)),
                   fmt(max_v)});
  }
  table.print(os);
}

util::Json load_metrics_snapshot(const std::string& path) {
  util::Json doc;
  try {
    doc = util::Json::parse_file(path);
  } catch (const IoError&) {
    throw InvalidArgument("metrics file missing or unreadable: " + path);
  } catch (const ParseError& e) {
    throw InvalidArgument("metrics file is not valid JSON: " + path + " (" + e.what() + ")");
  }
  if (!doc.is_object() || !doc.contains("counters") || !doc.contains("gauges") ||
      !doc.contains("histograms")) {
    throw InvalidArgument("metrics file is not a metrics snapshot (expected "
                          "counters/gauges/histograms objects): " +
                          path);
  }
  return doc;
}

util::Json chrome_trace_json(const std::vector<TraceEvent>& events) {
  util::JsonArray out;
  for (const TraceEvent& ev : events) {
    util::JsonObject e;
    e["name"] = ev.label.empty() ? std::string(event_kind_name(ev.kind)) : ev.label;
    e["cat"] = event_kind_name(ev.kind);
    const double wall_ms = num_field(ev, "wall_ms", -1.0);
    const bool batched = ev.kind == EventKind::BenchmarkRun && ev.fields.contains("slot");
    const bool span = wall_ms >= 0.0 && (ev.kind == EventKind::Phase || batched);
    if (span) {
      // Durations are recorded at scope exit, so the span *ends* at the
      // event timestamp; clamp the start at the epoch for events whose
      // duration predates tracer startup, shrinking the duration so the span
      // still ends at the recorded event time.
      e["ph"] = "X";
      const double end_us = ev.t_wall_ms * 1000.0;
      const double start_us = std::max(0.0, end_us - wall_ms * 1000.0);
      e["ts"] = start_us;
      e["dur"] = end_us - start_us;
    } else {
      e["ph"] = "i";
      e["ts"] = ev.t_wall_ms * 1000.0;
      e["s"] = "t";  // instant scope: thread
    }
    e["pid"] = 1;
    e["tid"] = batched ? static_cast<int>(num_field(ev, "slot")) + 1 : 0;
    util::JsonObject args;
    for (const auto& [key, value] : ev.fields) {
      args[key] = value;
    }
    e["args"] = std::move(args);
    out.push_back(util::Json(std::move(e)));
  }
  util::JsonObject doc;
  doc["traceEvents"] = std::move(out);
  doc["displayTimeUnit"] = "ms";
  return util::Json(std::move(doc));
}

void write_chrome_trace(const std::vector<TraceEvent>& events, const std::string& path) {
  chrome_trace_json(events).dump_file(path);
}

}  // namespace acclaim::telemetry

#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::telemetry {

Histogram::Histogram(HistogramOptions opts)
    : opts_(opts),
      buckets_(static_cast<std::size_t>(opts.buckets) + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  require(opts.first_bound > 0.0, "histogram first_bound must be positive");
  require(opts.buckets >= 1, "histogram needs at least one finite bucket");
}

void Histogram::observe(double v) noexcept {
  // log2-scale bucket index without a loop: bound_i = first_bound * 2^i.
  int idx = 0;
  if (v > opts_.first_bound) {
    idx = static_cast<int>(std::ceil(std::log2(v / opts_.first_bound)));
    idx = std::min(idx, opts_.buckets);  // overflow bucket
  }
  buckets_[static_cast<std::size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(v);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

double Histogram::bucket_bound(int i) const {
  require(i >= 0 && i < opts_.buckets, "bucket_bound: index must name a finite bucket");
  return opts_.first_bound * std::pow(2.0, static_cast<double>(i));
}

std::uint64_t Histogram::bucket_count(int i) const {
  require(i >= 0 && i < num_buckets(), "bucket_count: index out of range");
  return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  std::vector<BucketSlice> slices;
  for (int i = 0; i < num_buckets(); ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) {
      continue;
    }
    BucketSlice s;
    s.le = i < opts_.buckets ? bucket_bound(i) : std::numeric_limits<double>::infinity();
    s.n = c;
    slices.push_back(s);
  }
  return percentile_from_buckets(slices, count(), min(), max(), p);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.reset();
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

util::Json Histogram::to_json() const {
  util::Json doc = util::Json::object();
  const std::uint64_t n = count();
  doc["count"] = n;
  doc["sum"] = sum();
  if (n > 0) {
    doc["min"] = min();
    doc["max"] = max();
    doc["mean"] = mean();
  }
  util::Json buckets = util::Json::array();
  for (int i = 0; i < num_buckets(); ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) {
      continue;
    }
    util::Json b = util::Json::object();
    if (i < opts_.buckets) {
      b["le"] = bucket_bound(i);
    } else {
      b["le"] = "inf";
    }
    b["n"] = c;
    buckets.push_back(std::move(b));
  }
  doc["buckets"] = std::move(buckets);
  return doc;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

template <typename T, typename... Args>
T& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& items,
                  const std::string& name, Args&&... args) {
  for (auto& [n, item] : items) {
    if (n == name) {
      return *item;
    }
  }
  items.emplace_back(name, std::make_unique<T>(std::forward<Args>(args)...));
  return *items.back().second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name, HistogramOptions opts) {
  std::lock_guard lock(mu_);
  return find_or_create(histograms_, name, opts);
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [n, c] : counters_) {
    c->reset();
  }
  for (auto& [n, g] : gauges_) {
    g->reset();
  }
  for (auto& [n, h] : histograms_) {
    h->reset();
  }
}

util::Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  const auto sorted_names = [](const auto& items) {
    std::vector<std::string> names;
    names.reserve(items.size());
    for (const auto& [n, item] : items) {
      names.push_back(n);
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  const auto find = [](const auto& items, const std::string& name) -> const auto& {
    for (const auto& [n, item] : items) {
      if (n == name) {
        return *item;
      }
    }
    throw NotFoundError("metrics instrument vanished: " + name);  // unreachable
  };

  util::Json doc = util::Json::object();
  util::Json counters = util::Json::object();
  for (const std::string& n : sorted_names(counters_)) {
    counters[n] = find(counters_, n).value();
  }
  doc["counters"] = std::move(counters);
  util::Json gauges = util::Json::object();
  for (const std::string& n : sorted_names(gauges_)) {
    gauges[n] = find(gauges_, n).value();
  }
  doc["gauges"] = std::move(gauges);
  util::Json histograms = util::Json::object();
  for (const std::string& n : sorted_names(histograms_)) {
    histograms[n] = find(histograms_, n).to_json();
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

void MetricsRegistry::dump_file(const std::string& path) const { to_json().dump_file(path); }

double percentile_from_buckets(const std::vector<BucketSlice>& buckets, std::uint64_t count,
                               double min_v, double max_v, double p) {
  if (count == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  double seen = 0.0;
  for (const BucketSlice& b : buckets) {
    const double after = seen + static_cast<double>(b.n);
    if (after >= target) {
      // Log2 buckets span (le/2, le]; the overflow bucket tops out at the
      // observed max. Interpolate the rank's position inside the span.
      const double hi = std::isinf(b.le) ? max_v : b.le;
      const double lo = std::isinf(b.le) ? hi : hi / 2.0;
      const double frac =
          b.n == 0 ? 1.0 : (target - seen) / static_cast<double>(b.n);
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, min_v, max_v);
    }
    seen = after;
  }
  return max_v;  // rank beyond the recorded buckets (p == 1 edge)
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our instrument names use
/// '.' (and occasionally '-') as separators.
std::string prom_name(const std::string& name) {
  std::string out = "acclaim_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void prom_value(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string prometheus_text(const MetricsRegistry& registry) {
  // Built from the JSON snapshot rather than the live instruments so the
  // exposition and --metrics-out always agree on one consistent read.
  const util::Json snap = registry.to_json();
  std::string out;

  for (const auto& [name, value] : snap.at("counters").as_object()) {
    const std::string n = prom_name(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    out += n + " ";
    prom_value(out, value.as_number());
    out += "\n";
  }
  for (const auto& [name, value] : snap.at("gauges").as_object()) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    prom_value(out, value.as_number());
    out += "\n";
  }
  for (const auto& [name, hist] : snap.at("histograms").as_object()) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    // Our buckets are sparse per-bucket counts; Prometheus buckets are
    // cumulative and must end with le="+Inf".
    std::uint64_t cum = 0;
    for (const util::Json& b : hist.at("buckets").as_array()) {
      cum += static_cast<std::uint64_t>(b.at("n").as_int());
      const util::Json& le = b.at("le");
      if (le.is_string()) {
        continue;  // overflow bucket folds into +Inf below
      }
      out += n + "_bucket{le=\"";
      prom_value(out, le.as_number());
      out += "\"} " + std::to_string(cum) + "\n";
    }
    const auto count = static_cast<std::uint64_t>(hist.at("count").as_int());
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(count) + "\n";
    out += n + "_sum ";
    prom_value(out, hist.at("sum").as_number());
    out += "\n";
    out += n + "_count " + std::to_string(count) + "\n";
  }
  return out;
}

void publish_thread_pool_metrics() {
  const util::ThreadPoolStats st = util::global_pool().stats();
  MetricsRegistry& reg = metrics();
  reg.gauge("threadpool.threads").set(static_cast<double>(st.threads));
  reg.gauge("threadpool.tasks_executed").set(static_cast<double>(st.tasks_executed));
  reg.gauge("threadpool.parallel_fors").set(static_cast<double>(st.parallel_fors));
  reg.gauge("threadpool.inline_runs").set(static_cast<double>(st.inline_runs));
  reg.gauge("threadpool.queue_peak").set(static_cast<double>(st.queue_peak));
}

}  // namespace acclaim::telemetry

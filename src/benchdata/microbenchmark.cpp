#include "benchdata/microbenchmark.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "minimpi/cost_executor.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace acclaim::bench {

int MicrobenchConfig::timed_iterations(std::uint64_t msg_bytes, double expected_us) const {
  int tier = iters_large;
  if (msg_bytes <= 8 * 1024) {
    tier = iters_small;
  } else if (msg_bytes <= 512 * 1024) {
    tier = iters_medium;
  }
  if (expected_us > 0.0) {
    const int by_time = static_cast<int>(max_timed_seconds * 1e6 / expected_us);
    tier = std::min(tier, std::max(min_iterations, by_time));
  }
  return tier;
}

Microbenchmark::Microbenchmark(const simnet::NetworkModel& net, MicrobenchConfig config)
    : net_(net), config_(config) {}

namespace {

double run_schedule_us(const simnet::NetworkModel& net, const BenchmarkPoint& point,
                       const simnet::Allocation& alloc,
                       const minimpi::FlowMap& rack_flows,
                       const minimpi::FlowMap& pair_flows) {
  const Scenario& s = point.scenario;
  acclaim::require(alloc.num_nodes() >= s.nnodes,
                   "allocation too small for benchmark: " + s.to_string());
  const simnet::Allocation sub =
      alloc.num_nodes() == s.nnodes ? alloc : alloc.slice(0, s.nnodes);
  const minimpi::RankMap ranks(sub, s.ppn);
  minimpi::CostExecutor cost(net, ranks);
  cost.set_external_load(rack_flows, pair_flows);
  coll::CollParams p;
  p.nranks = s.nranks();
  p.type_size = 1;  // message size is specified in bytes
  p.count = s.msg_bytes;
  coll::build_schedule(point.algorithm, p, cost);
  return cost.elapsed_us();
}

}  // namespace

double Microbenchmark::schedule_time_us(const BenchmarkPoint& point,
                                        const simnet::Allocation& alloc) const {
  return run_schedule_us(net_, point, alloc, {}, {});
}

Measurement Microbenchmark::run(const BenchmarkPoint& point, const simnet::Allocation& alloc,
                                util::Rng& rng) const {
  return run_with_load(point, alloc, {}, {}, rng);
}

Measurement Microbenchmark::run_with_load(const BenchmarkPoint& point,
                                          const simnet::Allocation& alloc,
                                          const minimpi::FlowMap& rack_flows,
                                          const minimpi::FlowMap& pair_flows,
                                          util::Rng& rng) const {
  const auto host_start = std::chrono::steady_clock::now();
  const double base_us = run_schedule_us(net_, point, alloc, rack_flows, pair_flows);
  return finish_run(point, base_us, rng, host_start);
}

Measurement Microbenchmark::run_priced(const BenchmarkPoint& point, double base_us,
                                       util::Rng& rng) const {
  require(base_us > 0.0, "run_priced requires a positive precomputed schedule time");
  return finish_run(point, base_us, rng, std::chrono::steady_clock::now());
}

Measurement Microbenchmark::finish_run(const BenchmarkPoint& point, double base_us,
                                       util::Rng& rng,
                                       std::chrono::steady_clock::time_point host_start) const {
  const int iters = config_.timed_iterations(point.scenario.msg_bytes, base_us);
  const int warmup = static_cast<int>(std::ceil(config_.warmup_fraction * iters));

  // The schedule time is deterministic for a fixed network; per-iteration
  // variation is sampled as multiplicative lognormal noise.
  util::RunningStat stat;
  for (int i = 0; i < iters; ++i) {
    stat.add(base_us * rng.lognormal_median(1.0, config_.noise_sigma));
  }

  Measurement m;
  m.mean_us = stat.mean();
  m.stddev_us = stat.stddev();
  m.iterations = iters;
  const double run_us = static_cast<double>(warmup + iters) * base_us;
  m.collect_cost_s = config_.launch_base_s +
                     config_.launch_per_rank_s * point.scenario.nranks() + run_us * 1e-6;
  static telemetry::Counter& runs = telemetry::metrics().counter("simnet.microbench_runs");
  static telemetry::Gauge& modeled = telemetry::metrics().gauge("simnet.modeled_run_us");
  static telemetry::Histogram& latency =
      telemetry::metrics().histogram("simnet.schedule_us", {1.0, 32});
  // Host time spent simulating this point (schedule construction dominates):
  // the quantity the fig13/fig14 host-wall columns aggregate. All
  // instruments are atomic, so recording from concurrent batch members is
  // safe.
  static telemetry::Histogram& host_wall =
      telemetry::metrics().histogram("simnet.microbench_wall_us", {1.0, 32});
  runs.add();
  modeled.add(run_us);
  latency.observe(base_us);
  host_wall.observe(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - host_start)
          .count());
  return m;
}

}  // namespace acclaim::bench

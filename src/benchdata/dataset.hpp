// Precollected benchmark datasets (the paper's Fig. 1(a) methodology).
//
// For the comparative experiments the paper looks benchmark results up in an
// exhaustively precollected dataset instead of re-running them; we do the
// same. A Dataset maps BenchmarkPoint -> Measurement, persists to CSV, and
// answers oracle queries (best algorithm / best time per scenario) used by
// the average-slowdown metric.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "benchdata/grid.hpp"
#include "benchdata/microbenchmark.hpp"
#include "benchdata/point.hpp"
#include "simnet/machine.hpp"

namespace acclaim::bench {

class Dataset {
 public:
  void add(const BenchmarkPoint& point, const Measurement& m);

  bool contains(const BenchmarkPoint& point) const;
  /// Throws NotFoundError with the point description if absent.
  const Measurement& at(const BenchmarkPoint& point) const;

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// All stored points (sorted by point ordering).
  std::vector<BenchmarkPoint> points() const;

  /// All points of one collective.
  std::vector<BenchmarkPoint> points(coll::Collective c) const;

  /// Distinct scenarios of one collective.
  std::vector<Scenario> scenarios(coll::Collective c) const;

  /// Distinct message sizes present for a collective (sorted).
  std::vector<std::uint64_t> message_sizes(coll::Collective c) const;

  /// Oracle: the fastest measured algorithm / its time for a scenario.
  /// Throws NotFoundError if the scenario has no measurements.
  coll::Algorithm best_algorithm(const Scenario& s) const;
  double best_time_us(const Scenario& s) const;

  /// Measured time of a specific algorithm for a scenario.
  double time_us(const Scenario& s, coll::Algorithm a) const;

  /// Sum of collection costs over all stored points, in seconds.
  double total_collection_cost_s() const;

  void save(const std::string& path) const;
  static Dataset load(const std::string& path);

 private:
  std::map<BenchmarkPoint, Measurement> data_;
};

/// Exhaustively benchmarks every point of `grid` x `collectives` on a
/// contiguous allocation of a machine (sequential collection, one network
/// realization chosen by `seed`). This is the "precollected dataset" of the
/// simulated experiments.
Dataset precollect(const simnet::MachineConfig& machine, const FeatureGrid& grid,
                   const std::vector<coll::Collective>& collectives, std::uint64_t seed,
                   MicrobenchConfig config = {});

/// Loads `path` if it exists, otherwise precollects and saves it — keeps the
/// bench harnesses fast across runs while staying reproducible.
Dataset load_or_collect(const std::string& path, const simnet::MachineConfig& machine,
                        const FeatureGrid& grid, const std::vector<coll::Collective>& collectives,
                        std::uint64_t seed, MicrobenchConfig config = {});

}  // namespace acclaim::bench

// Feature grids: the enumerable slices of the feature space used for
// precollection, training candidates, and test sets.
#pragma once

#include <cstdint>
#include <vector>

#include "benchdata/point.hpp"
#include "util/rng.hpp"

namespace acclaim::bench {

/// Axis values for (nodes, ppn, message size). A grid does not itself fix
/// the collective; scenarios()/points() take one.
struct FeatureGrid {
  std::vector<int> nodes;
  std::vector<int> ppns;
  std::vector<std::uint64_t> msgs;

  /// Power-of-two grid: nodes 2..max_nodes, ppn 1..max_ppn, msg
  /// min_msg..max_msg, all doubling.
  static FeatureGrid p2(int max_nodes, int max_ppn, std::uint64_t min_msg,
                        std::uint64_t max_msg);

  /// Replaces every message size with a random non-power-of-two size whose
  /// closest power of two is the original value (paper §III-B test sets).
  FeatureGrid with_nonp2_msgs(util::Rng& rng) const;

  /// Replaces every node count with a random non-power-of-two count whose
  /// closest power of two is the original value (>= 2, <= max of grid).
  FeatureGrid with_nonp2_nodes(util::Rng& rng) const;

  /// All scenarios of this grid for one collective.
  std::vector<Scenario> scenarios(coll::Collective c) const;

  /// All (scenario x algorithm) points for one collective.
  std::vector<BenchmarkPoint> points(coll::Collective c) const;

  std::size_t scenario_count() const { return nodes.size() * ppns.size() * msgs.size(); }
};

/// A random non-power-of-two value v such that the closest power of two to v
/// is `p2_anchor` (i.e. v in (3*p2/4, 3*p2/2) excluding p2 itself). This is
/// the "message size between 6 and 12 that is not 8" rule of §IV-B.
/// Requires p2_anchor >= 4 (below that no such integer exists).
std::uint64_t random_nonp2_near(std::uint64_t p2_anchor, util::Rng& rng);

}  // namespace acclaim::bench

#include "benchdata/point.hpp"

#include "util/units.hpp"

namespace acclaim::bench {

std::string Scenario::to_string() const {
  return std::string(coll::collective_name(collective)) + "(nodes=" + std::to_string(nnodes) +
         ", ppn=" + std::to_string(ppn) + ", msg=" + util::format_bytes(msg_bytes) + ")";
}

std::string BenchmarkPoint::to_string() const {
  return scenario.to_string() + "/" + coll::algorithm_info(algorithm).name;
}

}  // namespace acclaim::bench

#include "benchdata/dataset.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <limits>
#include <set>

#include "simnet/allocation.hpp"
#include "simnet/network.hpp"
#include "simnet/topology.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::bench {

void Dataset::add(const BenchmarkPoint& point, const Measurement& m) {
  data_[point] = m;
}

bool Dataset::contains(const BenchmarkPoint& point) const { return data_.count(point) > 0; }

const Measurement& Dataset::at(const BenchmarkPoint& point) const {
  const auto it = data_.find(point);
  if (it == data_.end()) {
    throw NotFoundError("dataset has no measurement for " + point.to_string());
  }
  return it->second;
}

std::vector<BenchmarkPoint> Dataset::points() const {
  std::vector<BenchmarkPoint> out;
  out.reserve(data_.size());
  for (const auto& [p, m] : data_) {
    out.push_back(p);
  }
  return out;
}

std::vector<BenchmarkPoint> Dataset::points(coll::Collective c) const {
  std::vector<BenchmarkPoint> out;
  for (const auto& [p, m] : data_) {
    if (p.scenario.collective == c) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Scenario> Dataset::scenarios(coll::Collective c) const {
  std::set<Scenario> seen;
  for (const auto& [p, m] : data_) {
    if (p.scenario.collective == c) {
      seen.insert(p.scenario);
    }
  }
  return {seen.begin(), seen.end()};
}

std::vector<std::uint64_t> Dataset::message_sizes(coll::Collective c) const {
  std::set<std::uint64_t> seen;
  for (const auto& [p, m] : data_) {
    if (p.scenario.collective == c) {
      seen.insert(p.scenario.msg_bytes);
    }
  }
  return {seen.begin(), seen.end()};
}

coll::Algorithm Dataset::best_algorithm(const Scenario& s) const {
  coll::Algorithm best = coll::Algorithm::BcastBinomial;
  double best_us = std::numeric_limits<double>::infinity();
  for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
    const auto it = data_.find(BenchmarkPoint{s, a});
    if (it != data_.end() && it->second.mean_us < best_us) {
      best_us = it->second.mean_us;
      best = a;
    }
  }
  if (!std::isfinite(best_us)) {
    throw NotFoundError("dataset has no measurements for scenario " + s.to_string());
  }
  return best;
}

double Dataset::best_time_us(const Scenario& s) const {
  return at(BenchmarkPoint{s, best_algorithm(s)}).mean_us;
}

double Dataset::time_us(const Scenario& s, coll::Algorithm a) const {
  return at(BenchmarkPoint{s, a}).mean_us;
}

double Dataset::total_collection_cost_s() const {
  double t = 0.0;
  for (const auto& [p, m] : data_) {
    t += m.collect_cost_s;
  }
  return t;
}

void Dataset::save(const std::string& path) const {
  util::CsvWriter w(path);
  w.header({"collective", "algorithm", "nnodes", "ppn", "msg_bytes", "mean_us", "stddev_us",
            "iterations", "collect_cost_s"});
  for (const auto& [p, m] : data_) {
    w.row({coll::collective_name(p.scenario.collective), coll::algorithm_info(p.algorithm).name,
           std::to_string(p.scenario.nnodes), std::to_string(p.scenario.ppn),
           std::to_string(p.scenario.msg_bytes), util::format_double(m.mean_us),
           util::format_double(m.stddev_us), std::to_string(m.iterations),
           util::format_double(m.collect_cost_s)});
  }
}

namespace {

/// CSV cells are untrusted input (datasets are shipped between machines and
/// edited by hand): parse with row/column context and an explicit range
/// instead of letting std::stoi throw a bare std::invalid_argument — or,
/// worse, silently accept a negative node count.
long long checked_cell_int(const std::string& cell, const char* column, std::size_t row,
                           long long lo, long long hi) {
  long long v = 0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || cell.empty()) {
    throw ParseError("dataset cell '" + cell + "' in column '" + column +
                         "' is not an integer",
                     row, 0);
  }
  require(v >= lo && v <= hi, "dataset column '" + std::string(column) + "' row " +
                                  std::to_string(row) + ": " + std::to_string(v) +
                                  " out of range [" + std::to_string(lo) + ", " +
                                  std::to_string(hi) + "]");
  return v;
}

double checked_cell_double(const std::string& cell, const char* column, std::size_t row) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &pos);
  } catch (const std::exception&) {
    throw ParseError("dataset cell '" + cell + "' in column '" + column +
                         "' is not a number",
                     row, 0);
  }
  if (pos != cell.size() || !std::isfinite(v) || v < 0.0) {
    throw ParseError("dataset cell '" + cell + "' in column '" + column +
                         "' must be a finite non-negative number",
                     row, 0);
  }
  return v;
}

}  // namespace

Dataset Dataset::load(const std::string& path) {
  const util::CsvTable t = util::read_csv(path);
  const std::size_t c_coll = t.column_index("collective");
  const std::size_t c_alg = t.column_index("algorithm");
  const std::size_t c_nodes = t.column_index("nnodes");
  const std::size_t c_ppn = t.column_index("ppn");
  const std::size_t c_msg = t.column_index("msg_bytes");
  const std::size_t c_mean = t.column_index("mean_us");
  const std::size_t c_std = t.column_index("stddev_us");
  const std::size_t c_iter = t.column_index("iterations");
  const std::size_t c_cost = t.column_index("collect_cost_s");
  Dataset ds;
  std::size_t rowno = 1;  // header is row 0
  for (const auto& row : t.rows) {
    BenchmarkPoint p;
    p.scenario.collective = coll::parse_collective(row[c_coll]);
    p.algorithm = coll::parse_algorithm(p.scenario.collective, row[c_alg]);
    // Bounds match the serving layer's caps (serve/protocol.hpp): per-field
    // limits plus a joint rank cap so nranks() stays int-safe downstream.
    p.scenario.nnodes = static_cast<int>(
        checked_cell_int(row[c_nodes], "nnodes", rowno, 1, std::int64_t{1} << 22));
    p.scenario.ppn = static_cast<int>(
        checked_cell_int(row[c_ppn], "ppn", rowno, 1, std::int64_t{1} << 16));
    require(static_cast<std::int64_t>(p.scenario.nnodes) * p.scenario.ppn <=
                (std::int64_t{1} << 28),
            "dataset row " + std::to_string(rowno) + ": nnodes x ppn exceeds the rank cap");
    p.scenario.msg_bytes = static_cast<std::uint64_t>(
        checked_cell_int(row[c_msg], "msg_bytes", rowno, 1, std::int64_t{1} << 62));
    Measurement m;
    m.mean_us = checked_cell_double(row[c_mean], "mean_us", rowno);
    m.stddev_us = checked_cell_double(row[c_std], "stddev_us", rowno);
    m.iterations = static_cast<int>(checked_cell_int(row[c_iter], "iterations", rowno, 0,
                                                     std::numeric_limits<int>::max()));
    m.collect_cost_s = checked_cell_double(row[c_cost], "collect_cost_s", rowno);
    ds.add(p, m);
    ++rowno;
  }
  return ds;
}

Dataset precollect(const simnet::MachineConfig& machine, const FeatureGrid& grid,
                   const std::vector<coll::Collective>& collectives, std::uint64_t seed,
                   MicrobenchConfig config) {
  require(!grid.nodes.empty() && !grid.ppns.empty() && !grid.msgs.empty(),
          "precollect requires a non-empty grid");
  const int max_nodes = *std::max_element(grid.nodes.begin(), grid.nodes.end());
  require(max_nodes <= machine.total_nodes, "grid exceeds machine size");
  const simnet::Topology topo(machine);
  const simnet::NetworkModel net(topo, seed);
  const Microbenchmark mb(net, config);
  util::Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  std::vector<int> ids(static_cast<std::size_t>(max_nodes));
  for (int i = 0; i < max_nodes; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);

  // Parallel collection with the seed's exact noise sequence: the per-point
  // rngs are split off serially in grid order (identical to the historical
  // sequential loop), the simulated runs fan out on the global pool with
  // each body writing only its own slot, and the dataset is assembled
  // serially — so the resulting CSV is bitwise-identical for any thread
  // count, including 1.
  Dataset ds;
  for (coll::Collective c : collectives) {
    const std::vector<BenchmarkPoint> points = grid.points(c);
    std::vector<util::Rng> rngs;
    rngs.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      rngs.push_back(rng.split());
    }
    std::vector<Measurement> results(points.size());
    util::global_pool().parallel_for(0, points.size(), [&](std::size_t i) {
      results[i] = mb.run(points[i], alloc, rngs[i]);
    });
    for (std::size_t i = 0; i < points.size(); ++i) {
      ds.add(points[i], results[i]);
    }
    AC_LOG_INFO() << "precollected " << coll::collective_name(c) << " (" << points.size()
                  << " points)";
  }
  return ds;
}

Dataset load_or_collect(const std::string& path, const simnet::MachineConfig& machine,
                        const FeatureGrid& grid, const std::vector<coll::Collective>& collectives,
                        std::uint64_t seed, MicrobenchConfig config) {
  if (std::filesystem::exists(path)) {
    AC_LOG_INFO() << "loading dataset from " << path;
    return Dataset::load(path);
  }
  AC_LOG_INFO() << "collecting dataset into " << path;
  Dataset ds = precollect(machine, grid, collectives, seed, config);
  const auto dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) {
    std::filesystem::create_directories(dir);
  }
  ds.save(path);
  return ds;
}

}  // namespace acclaim::bench

// OSU-style microbenchmark harness over the simulated machine.
//
// Stands in for the OSU micro-benchmark suite the paper runs on Theta (§V):
// a job step is launched on a node subset, the collective is warmed up, then
// timed for a message-size-dependent iteration count. The per-point
// `collect_cost_s` (launch + warmup + timed iterations) is exactly the
// quantity the paper's training-time figures accumulate.
#pragma once

#include <chrono>

#include "benchdata/point.hpp"
#include "minimpi/cost_executor.hpp"
#include "simnet/allocation.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace acclaim::bench {

struct MicrobenchConfig {
  /// Job-step launch overhead: base + per-rank cost (aprun/srun startup).
  double launch_base_s = 1.5;
  double launch_per_rank_s = 0.002;
  /// Iteration counts by message size (OSU defaults shrink for large sizes).
  int iters_small = 1000;   ///< msg <= 8 KiB
  int iters_medium = 100;   ///< msg <= 512 KiB
  int iters_large = 20;     ///< larger
  double warmup_fraction = 0.2;
  /// Multiplicative measurement noise per timed iteration (lognormal sigma).
  double noise_sigma = 0.03;
  /// Cap on the timed portion of one point: iteration counts shrink (down
  /// to min_iterations) so no single point runs longer than this. Tuning
  /// harnesses bound per-point cost exactly this way; without it one
  /// 2048-rank 1-MiB allgather point can eat a minute of the job.
  double max_timed_seconds = 2.0;
  int min_iterations = 5;

  /// Iterations for a message size, given the expected single-iteration
  /// latency (used to apply the time cap).
  int timed_iterations(std::uint64_t msg_bytes, double expected_us) const;
};

/// Runs benchmark points against a network model. Stateless apart from
/// configuration; callers pass the allocation slice the benchmark runs on
/// and an Rng stream for the measurement noise.
class Microbenchmark {
 public:
  Microbenchmark(const simnet::NetworkModel& net, MicrobenchConfig config = {});

  /// Measures `point` on the first `point.scenario.nnodes` nodes of `alloc`
  /// (which must be at least that large).
  Measurement run(const BenchmarkPoint& point, const simnet::Allocation& alloc,
                  util::Rng& rng) const;

  /// As `run`, but with extra concurrent flows on the given racks/pairs from
  /// co-scheduled benchmarks (used by the parallel-collection experiments;
  /// congestion inflates the *measured* latency, which is the §III-D hazard).
  Measurement run_with_load(const BenchmarkPoint& point, const simnet::Allocation& alloc,
                            const minimpi::FlowMap& rack_flows,
                            const minimpi::FlowMap& pair_flows, util::Rng& rng) const;

  /// Deterministic single-execution time of the schedule (no noise, no
  /// launch overhead) in microseconds — the model-truth latency.
  double schedule_time_us(const BenchmarkPoint& point, const simnet::Allocation& alloc) const;

  /// As `run`, but reusing a schedule time the caller already computed
  /// (`base_us` must be schedule_time_us(point, <target allocation>)).
  /// Produces bitwise-identical Measurements to `run` while skipping the
  /// schedule construction — the dominant host cost. Used by
  /// LiveEnvironment::measure_scheduled to avoid re-pricing placements the
  /// CollectionScheduler's solo-cost oracle priced moments earlier.
  Measurement run_priced(const BenchmarkPoint& point, double base_us, util::Rng& rng) const;

  const MicrobenchConfig& config() const noexcept { return config_; }

 private:
  /// Shared measurement tail: iteration-count selection, noise sampling, and
  /// collection-cost accounting on top of a known schedule time.
  Measurement finish_run(const BenchmarkPoint& point, double base_us, util::Rng& rng,
                         std::chrono::steady_clock::time_point host_start) const;

  const simnet::NetworkModel& net_;
  MicrobenchConfig config_;
};

}  // namespace acclaim::bench

#include "benchdata/grid.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acclaim::bench {

FeatureGrid FeatureGrid::p2(int max_nodes, int max_ppn, std::uint64_t min_msg,
                            std::uint64_t max_msg) {
  require(max_nodes >= 2 && util::is_power_of_two(static_cast<std::uint64_t>(max_nodes)),
          "max_nodes must be a power of two >= 2");
  require(max_ppn >= 1 && util::is_power_of_two(static_cast<std::uint64_t>(max_ppn)),
          "max_ppn must be a power of two >= 1");
  require(util::is_power_of_two(min_msg) && util::is_power_of_two(max_msg) && min_msg <= max_msg,
          "message bounds must be powers of two with min <= max");
  FeatureGrid g;
  for (int n = 2; n <= max_nodes; n *= 2) {
    g.nodes.push_back(n);
  }
  for (int p = 1; p <= max_ppn; p *= 2) {
    g.ppns.push_back(p);
  }
  for (std::uint64_t m = min_msg; m <= max_msg; m *= 2) {
    g.msgs.push_back(m);
  }
  return g;
}

std::uint64_t random_nonp2_near(std::uint64_t p2_anchor, util::Rng& rng) {
  require(util::is_power_of_two(p2_anchor), "anchor must be a power of two");
  require(p2_anchor >= 4, "anchor must be >= 4 for a non-P2 neighbour to exist");
  // Closest-P2 region of p: (3p/4, 3p/2). Integer candidates excluding p.
  const auto lo = static_cast<std::int64_t>(p2_anchor * 3 / 4) + 1;
  const auto hi = static_cast<std::int64_t>(p2_anchor * 3 / 2) - 1;
  std::uint64_t v;
  do {
    v = static_cast<std::uint64_t>(rng.uniform_int(lo, hi));
  } while (v == p2_anchor);
  return v;
}

FeatureGrid FeatureGrid::with_nonp2_msgs(util::Rng& rng) const {
  FeatureGrid g = *this;
  for (auto& m : g.msgs) {
    if (m >= 4) {
      m = random_nonp2_near(m, rng);
    }
  }
  std::sort(g.msgs.begin(), g.msgs.end());
  g.msgs.erase(std::unique(g.msgs.begin(), g.msgs.end()), g.msgs.end());
  return g;
}

FeatureGrid FeatureGrid::with_nonp2_nodes(util::Rng& rng) const {
  FeatureGrid g = *this;
  for (auto& n : g.nodes) {
    if (n >= 4) {
      n = static_cast<int>(random_nonp2_near(static_cast<std::uint64_t>(n), rng));
    }
  }
  std::sort(g.nodes.begin(), g.nodes.end());
  g.nodes.erase(std::unique(g.nodes.begin(), g.nodes.end()), g.nodes.end());
  return g;
}

std::vector<Scenario> FeatureGrid::scenarios(coll::Collective c) const {
  std::vector<Scenario> out;
  out.reserve(scenario_count());
  for (int n : nodes) {
    for (int p : ppns) {
      for (std::uint64_t m : msgs) {
        out.push_back(Scenario{c, n, p, m});
      }
    }
  }
  return out;
}

std::vector<BenchmarkPoint> FeatureGrid::points(coll::Collective c) const {
  const auto algs = coll::algorithms_for(c);
  std::vector<BenchmarkPoint> out;
  out.reserve(scenario_count() * algs.size());
  for (const Scenario& s : scenarios(c)) {
    for (coll::Algorithm a : algs) {
      out.push_back(BenchmarkPoint{s, a});
    }
  }
  return out;
}

}  // namespace acclaim::bench

// Benchmark points and measurements — the unit of training data.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "collectives/types.hpp"

namespace acclaim::bench {

/// A tuning scenario: the three programmatic feature values of the paper
/// (number of nodes, processes per node, message size) plus the collective.
struct Scenario {
  coll::Collective collective = coll::Collective::Bcast;
  int nnodes = 1;
  int ppn = 1;
  std::uint64_t msg_bytes = 8;

  int nranks() const { return nnodes * ppn; }
  auto operator<=>(const Scenario&) const = default;

  std::string to_string() const;
};

/// A scenario paired with the algorithm whose performance is being measured
/// — one row of training data.
struct BenchmarkPoint {
  Scenario scenario;
  coll::Algorithm algorithm = coll::Algorithm::BcastBinomial;

  auto operator<=>(const BenchmarkPoint&) const = default;

  std::string to_string() const;
};

/// The result of benchmarking one point.
struct Measurement {
  double mean_us = 0.0;    ///< average per-iteration collective latency
  double stddev_us = 0.0;  ///< spread across timed iterations
  int iterations = 0;      ///< timed iterations used
  /// Wall-clock seconds this point cost to collect (launch overhead +
  /// warmup + timed iterations). This is what training-time figures sum.
  double collect_cost_s = 0.0;
};

}  // namespace acclaim::bench
